"""The analyzer's statement model.

All passes consume :class:`Unit` — a normalised view of one rule or
constraint that exists *independently* of whether the statement came from
built objects (``TeCoRe(rules=…)``), a pack, or program text (where it may
even have failed rule/constraint validation).  Units built from text carry
:class:`~repro.logic.parser.StatementSpans` so findings can point at the
offending atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..logic.atom import ConditionAtom, QuadAtom
from ..logic.constraint import TemporalConstraint
from ..logic.parser import RawStatement, SourceSpan, StatementSpans
from ..logic.rule import TemporalRule
from ..logic.terms import Variable
from ..temporal import IntervalExpression


@dataclass
class Unit:
    """One statement normalised for analysis.

    ``conditions`` holds a rule's conditions or a constraint's *body*
    conditions; ``head_conditions`` is non-empty only for constraints.
    ``weight`` follows the library convention: ``None`` means hard.
    """

    name: str
    kind: str  # "rule" | "constraint"
    body: Tuple[QuadAtom, ...]
    conditions: Tuple[ConditionAtom, ...]
    head_atom: Optional[QuadAtom] = None
    head_conditions: Tuple[ConditionAtom, ...] = ()
    head_interval: Optional[IntervalExpression] = None
    weight: Optional[float] = None
    spans: Optional[StatementSpans] = None
    source: Optional[str] = None
    statement: Optional[Union[TemporalRule, TemporalConstraint]] = None
    _position_cache: Optional[Tuple[Set[str], Set[str]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    @property
    def is_rule(self) -> bool:
        return self.kind == "rule"

    @property
    def is_hard(self) -> bool:
        return self.weight is None

    # -- span helpers --------------------------------------------------- #
    @property
    def statement_span(self) -> Optional[SourceSpan]:
        return self.spans.statement if self.spans is not None else None

    def body_span(self, index: int) -> Optional[SourceSpan]:
        if self.spans is not None and index < len(self.spans.body):
            return self.spans.body[index]
        return self.statement_span

    def condition_span(self, index: int) -> Optional[SourceSpan]:
        if self.spans is not None and index < len(self.spans.conditions):
            return self.spans.conditions[index]
        return self.statement_span

    def head_span(self) -> Optional[SourceSpan]:
        if self.spans is not None and self.spans.head is not None:
            return self.spans.head
        return self.statement_span

    def head_condition_span(self, index: int) -> Optional[SourceSpan]:
        if self.spans is not None and index < len(self.spans.head_conditions):
            return self.spans.head_conditions[index]
        return self.statement_span

    # -- variable classification ---------------------------------------- #
    def body_variable_positions(self) -> Tuple[Set[str], Set[str]]:
        """Names of body variables by sort: (entity positions, interval positions)."""
        if self._position_cache is None:
            entity: Set[str] = set()
            interval: Set[str] = set()
            for atom in self.body:
                for position in (atom.subject, atom.predicate, atom.object):
                    if isinstance(position, Variable):
                        entity.add(position.name)
                if isinstance(atom.interval, Variable):
                    interval.add(atom.interval.name)
            self._position_cache = (entity, interval)
        return self._position_cache

    def body_variable_names(self) -> Set[str]:
        entity, interval = self.body_variable_positions()
        return entity | interval

    def all_conditions(self) -> Tuple[Tuple[str, int, ConditionAtom], ...]:
        """Every condition with its group ("condition"/"head") and index."""
        items: List[Tuple[str, int, ConditionAtom]] = []
        for index, condition in enumerate(self.conditions):
            items.append(("condition", index, condition))
        for index, condition in enumerate(self.head_conditions):
            items.append(("head", index, condition))
        return tuple(items)

    def span_for(self, group: str, index: int) -> Optional[SourceSpan]:
        if group == "head":
            return self.head_condition_span(index)
        return self.condition_span(index)


# --------------------------------------------------------------------------- #
# Constructors
# --------------------------------------------------------------------------- #
def unit_from_rule(
    rule: TemporalRule,
    spans: Optional[StatementSpans] = None,
    source: Optional[str] = None,
) -> Unit:
    return Unit(
        name=rule.name,
        kind="rule",
        body=tuple(rule.body),
        conditions=tuple(rule.conditions),
        head_atom=rule.head,
        head_interval=rule.head_interval,
        weight=rule.weight,
        spans=spans,
        source=source,
        statement=rule,
    )


def unit_from_constraint(
    constraint: TemporalConstraint,
    spans: Optional[StatementSpans] = None,
    source: Optional[str] = None,
) -> Unit:
    return Unit(
        name=constraint.name,
        kind="constraint",
        body=tuple(constraint.body),
        conditions=tuple(constraint.body_conditions),
        head_conditions=tuple(constraint.head_conditions),
        weight=constraint.weight,
        spans=spans,
        source=source,
        statement=constraint,
    )


def unit_from_raw(raw: RawStatement, source: Optional[str] = None) -> Unit:
    """A unit from a pre-validation parse result (safety may not hold)."""
    if raw.is_rule:
        head_atom = raw.head if isinstance(raw.head, QuadAtom) else None
        return Unit(
            name=raw.name,
            kind="rule",
            body=raw.body,
            conditions=raw.conditions,
            head_atom=head_atom,
            head_interval=raw.head_interval,
            weight=raw.effective_weight,
            spans=raw.spans,
            source=source,
        )
    return Unit(
        name=raw.name,
        kind="constraint",
        body=raw.body,
        conditions=raw.conditions,
        head_conditions=raw.head_conditions,
        weight=raw.effective_weight,
        spans=raw.spans,
        source=source,
    )


def variable_occurrences(unit: Unit) -> Dict[str, int]:
    """How often each variable name occurs across the whole statement."""
    counts: Dict[str, int] = {}

    def bump(variable: Variable) -> None:
        counts[variable.name] = counts.get(variable.name, 0) + 1

    atoms: List[QuadAtom] = list(unit.body)
    if unit.head_atom is not None:
        atoms.append(unit.head_atom)
    for atom in atoms:
        for position in (atom.subject, atom.predicate, atom.object, atom.interval):
            if isinstance(position, Variable):
                bump(position)
    for _group, _index, condition in unit.all_conditions():
        for variable in condition.variables():
            bump(variable)
    if unit.head_interval is not None:
        for name in (unit.head_interval.left, unit.head_interval.right):
            if isinstance(name, str):
                counts[name] = counts.get(name, 0) + 1
    return counts
