"""Ground-program feasibility pre-check (E403).

Unit propagation over a :class:`~repro.logic.ground.GroundProgram`'s hard
clauses: hard unit clauses force literals, forced literals shrink other
hard clauses, and an emptied hard clause is a contradiction.  Propagation
is sound but incomplete — **E403 implies every MAP solver raises
``InfeasibleProgramError``** (the differential tests assert exactly this),
while silence proves nothing.

Programs built by the pipeline's translator are immune by construction
(every hard clause it emits carries a negative literal, so the all-false
assignment satisfies them); the check exists for hand-built programs fed
straight to the solver layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..logic.ground import GroundProgram
from .findings import Finding, LintReport


def propagate_hard_clauses(program: GroundProgram) -> Optional[List[str]]:
    """Run unit propagation; the contradiction trail, or None when consistent.

    The returned trail renders the propagation chain (clause origins) that
    derived the contradiction, newest last.
    """
    hard = [clause for clause in program.clauses if clause.is_hard]
    forced: Dict[int, bool] = {}
    reasons: Dict[int, str] = {}

    watch: List[Optional[object]] = list(hard)

    changed = True
    while changed:
        changed = False
        for position, clause in enumerate(watch):
            if clause is None:
                continue
            unassigned: List[tuple] = []
            satisfied = False
            for atom, positive in clause.literals:  # type: ignore[union-attr]
                value = forced.get(atom)
                if value is None:
                    unassigned.append((atom, positive))
                elif value == positive:
                    satisfied = True
                    break
            if satisfied:
                watch[position] = None
                continue
            if not unassigned:
                origin = clause.origin or str(clause)  # type: ignore[union-attr]
                conflicting = [
                    reasons[atom]
                    for atom, _positive in clause.literals  # type: ignore[union-attr]
                    if atom in reasons
                ]
                return [*dict.fromkeys(conflicting), f"falsified hard clause {origin}"]
            if len(unassigned) == 1:
                atom, positive = unassigned[0]
                forced[atom] = positive
                origin = clause.origin or str(clause)  # type: ignore[union-attr]
                reasons[atom] = (
                    f"hard clause {origin} forces x{atom}={'true' if positive else 'false'}"
                )
                watch[position] = None
                changed = True
    return None


def check_ground_program(program: GroundProgram) -> LintReport:
    """E403 when unit propagation refutes the program's hard clauses."""
    report = LintReport()
    trail = propagate_hard_clauses(program)
    if trail is not None:
        rendered = "; ".join(trail)
        report.findings.append(
            Finding(
                code="E403",
                message=(
                    "hard clauses are unsatisfiable — unit propagation derives "
                    f"a contradiction ({rendered}); every MAP solver will raise "
                    "InfeasibleProgramError"
                ),
            )
        )
    return report
