"""Pass 5: duplicate and subsumed statements.

**W501** — two statements identical up to a consistent renaming of their
variables.  Both translate to the same ground clauses, so their weights
stack silently (for soft statements) or one is pure dead weight (hard).

**W502** — a statement whose body strictly contains another statement's
body under a variable substitution, with the same (substituted) head and a
subset of its conditions: every match of the specific statement already
fires the general one.

Both lints are syntactic and conservative: condition and head comparison
happens on substituted renderings, so anything the renderer cannot prove
equal is treated as different (no spurious findings).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set

from ..logic.terms import Variable
from .findings import Finding, LintReport
from .hardcore import _embeddings
from .model import Unit

#: Identifier tokens in rendered statements; variables print *bare* (no
#: ``?`` sigil), so rewriting filters tokens against the unit's known
#: variable names.
_WORD_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_']*")


def _unit_variable_names(unit: Unit) -> Set[str]:
    names: Set[str] = set()
    atoms = list(unit.body)
    if unit.head_atom is not None:
        atoms.append(unit.head_atom)
    for atom in atoms:
        for position in (atom.subject, atom.predicate, atom.object, atom.interval):
            if isinstance(position, Variable):
                names.add(position.name)
    for _group, _index, condition in unit.all_conditions():
        names.update(v.name for v in condition.variables())
    if unit.head_interval is not None:
        for side in (unit.head_interval.left, unit.head_interval.right):
            if isinstance(side, str):
                names.add(side)
    return names


def _canonical_text(unit: Unit) -> str:
    """The statement rendered with variables renamed in occurrence order."""
    parts: List[str] = [unit.kind, "|".join(str(atom) for atom in unit.body)]
    parts.append("|".join(str(condition) for condition in unit.conditions))
    parts.append(str(unit.head_atom) if unit.head_atom is not None else "")
    parts.append("|".join(str(c) for c in unit.head_conditions))
    if unit.head_interval is not None:
        interval = unit.head_interval
        parts.append(f"{interval.kind}({interval.left},{interval.right},{interval.delta})")
    parts.append("hard" if unit.is_hard else f"w={unit.weight:g}")
    text = " ;; ".join(parts)

    names = _unit_variable_names(unit)
    mapping: Dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        token = match.group(0)
        if token not in names:
            return token
        if token not in mapping:
            # \x00 cannot occur in an identifier, so renamed variables can
            # never collide with constants spelled ``_c0`` etc.
            mapping[token] = f"\x00{len(mapping)}"
        return mapping[token]

    return _WORD_TOKEN.sub(rename, text)


def _substituted_text(value: object, subst: Dict[str, object], names: Set[str]) -> str:
    """str(value) with the general statement's variables rewritten via ``subst``."""

    def rewrite(match: "re.Match[str]") -> str:
        token = match.group(0)
        if token not in names:
            return token
        target = subst.get(token)
        if target is None:
            return token
        if isinstance(target, Variable):
            return target.name
        return str(target)

    return _WORD_TOKEN.sub(rewrite, str(value))


def _subsumes(general: Unit, specific: Unit) -> bool:
    """True when every match of ``specific`` already fires ``general``."""
    if general.kind != specific.kind:
        return False
    if len(general.body) >= len(specific.body):
        return False
    names = _unit_variable_names(general)
    for subst in _embeddings(general.body, specific.body, {}, frozenset()):
        if general.head_atom is not None:
            if specific.head_atom is None or _substituted_text(
                general.head_atom, subst, names
            ) != str(specific.head_atom):
                continue
        if (general.head_interval is None) != (specific.head_interval is None):
            continue
        if general.head_interval is not None and _substituted_interval(
            general, subst
        ) != _interval_text(specific):
            continue
        specific_conditions: Set[str] = {str(condition) for condition in specific.conditions}
        specific_head_conditions: Set[str] = {
            str(condition) for condition in specific.head_conditions
        }
        if all(
            _substituted_text(condition, subst, names) in specific_conditions
            for condition in general.conditions
        ) and all(
            _substituted_text(condition, subst, names) in specific_head_conditions
            for condition in general.head_conditions
        ):
            return True
    return False


def _interval_text(unit: Unit) -> Optional[str]:
    if unit.head_interval is None:
        return None
    interval = unit.head_interval
    return f"{interval.kind}({interval.left},{interval.right},{interval.delta})"


def _substituted_interval(unit: Unit, subst: Dict[str, object]) -> Optional[str]:
    if unit.head_interval is None:
        return None
    interval = unit.head_interval
    sides: List[Optional[str]] = []
    for side in (interval.left, interval.right):
        if isinstance(side, str):
            target = subst.get(side)
            if isinstance(target, Variable):
                sides.append(target.name)
            elif target is None:
                sides.append(side)
            else:
                return None  # bound to a constant: not comparable here
        else:
            sides.append(side)
    return f"{interval.kind}({sides[0]},{sides[1]},{interval.delta})"


def check_duplicates(units: Sequence[Unit]) -> LintReport:
    report = LintReport()
    canon: Dict[str, Unit] = {}
    for unit in units:
        text = _canonical_text(unit)
        original = canon.get(text)
        if original is not None:
            report.findings.append(
                Finding(
                    code="W501",
                    message=(
                        f"{unit.kind} {unit.name} duplicates {original.name} up "
                        "to variable renaming; their weights stack silently"
                    ),
                    statement=unit.name,
                    span=unit.statement_span,
                    source=unit.source,
                )
            )
        else:
            canon[text] = unit

    for specific in units:
        for general in units:
            if general is specific:
                continue
            if _subsumes(general, specific):
                report.findings.append(
                    Finding(
                        code="W502",
                        message=(
                            f"{specific.kind} {specific.name} is subsumed by "
                            f"{general.name}: every match already fires the "
                            "more general statement"
                        ),
                        statement=specific.name,
                        span=specific.statement_span,
                        source=specific.source,
                    )
                )
                break
    return report
