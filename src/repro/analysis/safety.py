"""Pass 1: safety / range restriction and singleton-variable hygiene.

Mirrors the eager validation in :class:`~repro.logic.rule.TemporalRule` /
:class:`~repro.logic.constraint.TemporalConstraint` ``__post_init__`` but
reports findings with source spans instead of raising, so a whole program
can be vetted in one run.
"""

from __future__ import annotations

from typing import List, Set

from ..logic.terms import Variable
from .findings import Finding, LintReport
from .model import Unit, variable_occurrences


def check_safety(unit: Unit) -> LintReport:
    report = LintReport()
    if not unit.body:
        report.findings.append(
            Finding(
                code="E103",
                message=f"{unit.kind} body contains no quad atom",
                statement=unit.name,
                span=unit.statement_span,
                source=unit.source,
            )
        )
        return report

    if (
        not unit.is_rule and len(unit.body) < 2 and not unit.conditions and not unit.head_conditions
    ):
        report.findings.append(
            Finding(
                code="E104",
                message=(
                    "single-atom constraint with no conditions would mark every "
                    "fact of its predicate as a conflict"
                ),
                statement=unit.name,
                span=unit.statement_span,
                source=unit.source,
                hint="add a second body atom or a body/head condition",
            )
        )

    body_vars = {variable.name for atom in unit.body for variable in atom.variables()}
    unsafe: Set[str] = set()

    # Head quad variables (interval position only when no head-interval
    # expression overrides it) plus the head-interval's own arguments.
    if unit.head_atom is not None:
        head_vars: Set[str] = {v.name for v in unit.head_atom.entity_variables()}
        interval_variable = unit.head_atom.interval_variable()
        if interval_variable is not None and unit.head_interval is None:
            head_vars.add(interval_variable.name)
        if unit.head_interval is not None:
            for argument in (unit.head_interval.left, unit.head_interval.right):
                if isinstance(argument, str):
                    head_vars.add(argument)
        unsafe = head_vars - body_vars
        if unsafe:
            names = ", ".join(sorted(unsafe))
            report.findings.append(
                Finding(
                    code="E101",
                    message=f"head variable(s) {names} do not appear in the body",
                    statement=unit.name,
                    span=unit.head_span(),
                    source=unit.source,
                )
            )

    for group, index, condition in unit.all_conditions():
        loose = {v.name for v in condition.variables()} - body_vars
        if loose:
            names = ", ".join(sorted(loose))
            label = "head condition" if group == "head" else "condition"
            report.findings.append(
                Finding(
                    code="E102",
                    message=f"{label} variable(s) {names} do not appear in the body",
                    statement=unit.name,
                    span=unit.span_for(group, index),
                    source=unit.source,
                )
            )
            unsafe |= loose

    # Singletons: body-bound variables used exactly once anywhere.  Variables
    # already reported unsafe are skipped, as are parser-generated interval
    # variables (``_t…``) for triple-style atoms.
    counts = variable_occurrences(unit)
    singletons: List[str] = sorted(
        name
        for name, count in counts.items()
        if count == 1 and name in body_vars and name not in unsafe
        and not name.startswith("_")
    )
    for name in singletons:
        span = unit.statement_span
        for index, atom in enumerate(unit.body):
            if any(
                isinstance(p, Variable) and p.name == name
                for p in (atom.subject, atom.predicate, atom.object, atom.interval)
            ):
                span = unit.body_span(index)
                break
        report.findings.append(
            Finding(
                code="I105",
                message=f"variable {name} occurs only once",
                statement=unit.name,
                span=span,
                source=unit.source,
                hint="rename to something meaningful or reuse it if this is a typo",
            )
        )
    return report
