"""Static analysis (``tecore lint``) over temporal rule programs.

The analyzer inspects a program *before* grounding: safety and schema
conformance, point-algebra temporal satisfiability, hard-conflict
feasibility, duplicate/subsumption hygiene, and vectorization-coverage
performance lints.  Findings carry stable diagnostic codes (see
:data:`~repro.analysis.findings.DIAGNOSTICS` and ``docs/analysis.md``),
default severities, and — for programs parsed from text — source spans.
"""

from .analyzer import (
    analyze_parsed,
    analyze_program,
    analyze_text,
    analyze_units,
)
from .findings import DIAGNOSTICS, Diagnostic, Finding, LintReport, Severity
from .groundcheck import check_ground_program, propagate_hard_clauses
from .model import (
    Unit,
    unit_from_constraint,
    unit_from_raw,
    unit_from_rule,
)

__all__ = [
    "DIAGNOSTICS",
    "Diagnostic",
    "Finding",
    "LintReport",
    "Severity",
    "Unit",
    "analyze_parsed",
    "analyze_program",
    "analyze_text",
    "analyze_units",
    "check_ground_program",
    "propagate_hard_clauses",
    "unit_from_constraint",
    "unit_from_raw",
    "unit_from_rule",
]
