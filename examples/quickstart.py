#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Loads the Figure 1 UTKG about coach Claudio Ranieri, applies the paper's
inference rules f1-f3 and constraints c1-c3, runs MAP inference with both
reasoner families (nRockIt-style MLN and nPSL), and prints the debugging
report — reproducing Figure 7 (the conflicting Napoli fact is removed) and
the statistics panel of Figure 8.

Run with:  python examples/quickstart.py
"""

from repro import TeCoRe, render_graph_summary, render_report
from repro.core import render_comparison
from repro.datasets import ranieri_graph


def main() -> None:
    graph = ranieri_graph()
    print("=" * 72)
    print("Input UTKG (Figure 1)")
    print("=" * 72)
    print(render_graph_summary(graph))
    print()
    for fact in graph:
        print(f"  {fact}")
    print()

    results = []
    for solver in ("nrockit", "npsl"):
        print("=" * 72)
        print(f"MAP inference with {solver}")
        print("=" * 72)
        system = TeCoRe.from_pack("running-example", solver=solver)
        result = system.resolve(graph)
        results.append(result)
        print(render_report(result))
        print()

    print("=" * 72)
    print("Solver comparison (same repair, different machinery)")
    print("=" * 72)
    print(render_comparison(results))
    print()
    removed = {str(fact.object) for fact in results[0].removed_facts}
    assert removed == {"Napoli"}, removed
    print("Reproduced Figure 7: the Napoli coaching spell is removed, facts 1-4 kept.")


if __name__ == "__main__":
    main()
