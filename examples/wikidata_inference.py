#!/usr/bin/env python3
"""Temporal inference and conflict resolution on a Wikidata-like KG.

The paper's second demo dataset is a 6.3M-fact temporal extraction from
Wikidata (playsFor, educatedAt, memberOf, occupation, spouse).  This script
works on a scaled-down synthetic KG with the same relation mix and shows the
pieces beyond plain conflict detection:

* the biography constraint pack (hard ordering constraints + a *soft*
  memberOf disjointness constraint);
* temporal inference rules adding derived facts;
* the derived-fact confidence threshold ("remove derived facts below that");
* the scalable PSL path, which is what the paper recommends at this size.

Run with:  python examples/wikidata_inference.py [scale]
"""

import sys

from repro import TeCoRe, render_report
from repro.core import sweep_thresholds
from repro.datasets import WikidataConfig, generate_wikidata
from repro.kg import graph_stats
from repro.logic import RuleBuilder, quad


def main(scale: float = 0.0005) -> None:
    print(f"Generating Wikidata-like UTKG at scale {scale} (paper inventory x {scale}) ...")
    dataset = generate_wikidata(WikidataConfig(scale=scale, noise_ratio=0.4, seed=42))
    stats = graph_stats(dataset.graph)
    print(f"  {stats.fact_count} facts over {stats.predicate_count} relations")
    for row in stats.as_rows():
        print(f"    {row['predicate']:12s} {row['facts']:6d} facts")
    print()

    # Biography pack plus one extra hand-written inference rule, as a domain
    # expert would add through the demo UI.
    system = TeCoRe.from_pack("biography", solver="npsl", threshold=0.5)
    system.add_rule(
        RuleBuilder("educatedImpliesAffiliated")
        .body(quad("x", "educatedAt", "y", "t"))
        .head(quad("x", "affiliatedWith", "y", "t"))
        .weight(1.2)
        .derived_confidence(0.6)
        .build()
    )

    result = system.resolve(dataset.graph)
    print(render_report(result, limit=10))
    print()

    # How does the derived-fact threshold trade coverage for reliability?
    derived = list(result.inferred_facts) + list(result.inferred_below_threshold)
    sweep = sweep_thresholds(derived, [0.0, 0.3, 0.5, 0.7, 0.9])
    print("Derived facts surviving each confidence threshold:")
    for threshold, count in sweep:
        print(f"  threshold {threshold:.1f}: {count} derived facts")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.0005)
