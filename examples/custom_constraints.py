#!/usr/bin/env python3
"""Authoring your own rules and constraints (the demo's editors, as an API).

The TeCoRe demo lets the audience modify predefined constraints or add new
ones through two UIs: a Datalog-style text editor and a point-and-click
constraints editor with predicate auto-completion and Allen relations.  This
script shows both routes on a small employment knowledge graph:

1. the ``ConstraintEditor`` — pick predicates from the loaded graph and relate
   them with Allen relations;
2. the Datalog-style text syntax parsed by ``parse_program``;
3. running the resulting program with both reasoner families.

Run with:  python examples/custom_constraints.py
"""

from repro import TeCoRe, TemporalKnowledgeGraph, render_report
from repro.logic import ConstraintEditor, parse_program


def build_graph() -> TemporalKnowledgeGraph:
    """A small employment KG with deliberate temporal mistakes."""
    graph = TemporalKnowledgeGraph(name="employment")
    graph.add_all(
        [
            ("Ada", "birthDate", 1815, (1815, 1815), 1.0),
            ("Ada", "worksFor", "AnalyticalEngines", (1833, 1842), 0.9),
            ("Ada", "worksFor", "RoyalSociety", (1840, 1845), 0.55),  # overlaps the first job
            ("Ada", "deathDate", 1852, (1852, 1852), 1.0),
            ("Ada", "educatedAt", "HomeSchooling", (1820, 1832), 0.8),
            ("Grace", "birthDate", 1906, (1906, 1906), 1.0),
            ("Grace", "worksFor", "Navy", (1943, 1966), 0.95),
            ("Grace", "worksFor", "EckertMauchly", (1949, 1971), 0.6),  # overlaps the Navy job
            ("Grace", "deathDate", 1992, (1992, 1992), 1.0),
            ("Grace", "educatedAt", "Yale", (1928, 1934), 0.9),
            (
                "Grace", "educatedAt", "Yale", (1990, 1995), 0.3
            ),  # after retirement: extraction error
        ]
    )
    return graph


def main() -> None:
    graph = build_graph()

    # ------------------------------------------------------------------ #
    # Route 1: the constraints editor (auto-completion + Allen relations)
    # ------------------------------------------------------------------ #
    editor = ConstraintEditor(graph)
    print("Predicates available to the editor:", ", ".join(editor.predicates()))
    print("Auto-completion for 'wo':", editor.complete("wo"))
    print()

    one_employer = editor.functional_over_time("worksFor", weight=2.0, name="oneEmployer")
    born_before_work = editor.relate("birthDate", "worksFor", "before", name="bornBeforeWork")
    die_after_school = editor.relate(
        "educatedAt", "deathDate", "before", name="educatedBeforeDeath"
    )
    print("Editor-built constraints:")
    for constraint in (one_employer, born_before_work, die_after_school):
        print(f"  {constraint}")
    print()

    # ------------------------------------------------------------------ #
    # Route 2: the Datalog-style text syntax
    # ------------------------------------------------------------------ #
    program_text = """
    # derived knowledge: employment implies affiliation over the same interval
    f1: quad(x, worksFor, y, t) -> quad(x, affiliatedWith, y, t) w=2.0

    # a person must be born before she dies (the paper's c1)
    c1: quad(x, birthDate, y, t) & quad(x, deathDate, z, t2) -> start(t) < start(t2)
    """
    parsed = parse_program(program_text)
    print(
        f"Parsed {len(parsed.rules)} rule(s) and {len(parsed.constraints)} constraint(s) from text."
    )
    print()

    # ------------------------------------------------------------------ #
    # Run both reasoners over the combined program
    # ------------------------------------------------------------------ #
    for solver in ("nrockit", "npsl"):
        system = TeCoRe(
            rules=list(parsed.rules),
            constraints=[one_employer, born_before_work, die_after_school, *parsed.constraints],
            solver=solver,
            threshold=0.5,
        )
        result = system.resolve(graph)
        print("=" * 72)
        print(
            f"{solver}: {result.statistics.removed_facts} facts removed, "
            f"{result.statistics.inferred_facts} facts inferred"
        )
        print("=" * 72)
        print(render_report(result, limit=8))
        print()


if __name__ == "__main__":
    main()
