#!/usr/bin/env python3
"""Debugging a noisy FootballDB-style knowledge graph.

This is the paper's headline use case: a temporal KG harvested by open
information extraction where "there are as many erroneous temporal facts as
the correct ones".  The script

1. generates a synthetic FootballDB (playsFor + birthDate) with 50% planted
   noise and a remembered ground truth;
2. detects temporal conflicts with the sports constraint pack;
3. repairs the graph with the MLN path, the PSL path, and the greedy/static
   baselines;
4. scores each repair against the planted noise (precision / recall / F1).

Run with:  python examples/footballdb_debugging.py [scale]
"""

import sys
import time

from repro import TeCoRe
from repro.baselines import GreedyResolver, StaticResolver
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import find_conflicts, sports_pack
from repro.metrics import repair_quality


def main(scale: float = 0.02) -> None:
    print(f"Generating synthetic FootballDB at scale {scale} with 50% planted noise ...")
    dataset = generate_footballdb(FootballDBConfig(scale=scale, noise_ratio=0.5, seed=2017))
    graph = dataset.graph
    print(
        f"  {len(graph)} facts ({len(dataset.clean_facts)} clean + "
        f"{len(dataset.noise_facts)} erroneous)"
    )

    pack = sports_pack()
    violations = find_conflicts(graph, pack.constraints)
    conflicting = {fact.statement_key for violation in violations for fact in violation.facts}
    print(f"  {len(violations)} constraint violations involving {len(conflicting)} facts\n")

    rows = []

    def record(name: str, removed_facts, seconds: float) -> None:
        quality = repair_quality(removed_facts, dataset.noise_facts)
        rows.append(
            (name, len(removed_facts), quality.precision, quality.recall, quality.f1, seconds)
        )

    for solver in ("nrockit", "npsl"):
        system = TeCoRe.from_pack("sports", solver=solver)
        started = time.perf_counter()
        result = system.resolve(graph)
        record(solver, result.removed_facts, time.perf_counter() - started)

    started = time.perf_counter()
    greedy = GreedyResolver().resolve(graph, pack.constraints)
    record("greedy", greedy.removed_facts, time.perf_counter() - started)

    started = time.perf_counter()
    static = StaticResolver().resolve(graph, pack.constraints)
    record("static (no time)", static.removed_facts, time.perf_counter() - started)

    print(f"{'method':18s} {'removed':>8s} {'precision':>10s} {'recall':>8s} {'F1':>6s} {'seconds':>8s}")
    print("-" * 64)
    for name, removed, precision, recall, f1, seconds in rows:
        print(f"{name:18s} {removed:8d} {precision:10.3f} {recall:8.3f} {f1:6.3f} {seconds:8.2f}")
    print()
    print(
        "The temporal MAP repairs recover the planted noise with high precision;\n"
        "the static baseline (which ignores validity time, like pre-TeCoRe\n"
        "debuggers) removes many correct career facts and scores far lower."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
