"""A12 — columnar vectorized grounding: merge joins vs tuple-at-a-time.

The vectorized engine is the first in the family to change the *data
representation* rather than just the join strategy: the working graph is
mirrored into interned integer columns (``repro.kg.columnar``) and each body
is compiled into sorted-array merge/`searchsorted` joins plus interval masks.
This benchmark pins its speedup over the semi-naive :class:`IndexedGrounder`
— the engine the A8 benchmark crowned — on a FootballDB-scale workload.

The workload is A8's chained scalability workload (FootballDB at 50% noise,
sports pack, team locations, geographic rule chain) extended with a
*duplicate-registration audit* constraint: two distinct players registered to
the same club with identical start dates look like duplicate extractions in
crawled data.  Joining ``playsFor`` against itself on the *team* position
gives per-key buckets that grow with dataset scale — the regime where
tuple-at-a-time joins drown in per-candidate Python work and columnar merge
joins shine.

Two guarantees are asserted, not just reported:

* both engines produce bit-identical ground programs (canonical signatures);
* the vectorized engine grounds the workload at least ``MIN_SPEEDUP`` (3×)
  faster than the indexed engine.
"""

import time

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro.logic import (
    ConstraintBuilder,
    IndexedGrounder,
    VectorizedGrounder,
    compare,
    not_equal,
    quad,
)
from repro.logic.constraint import ConstraintKind
from repro.logic.expressions import IntervalStart
from repro.logic.terms import Variable

from bench_grounding_engine import MAX_ROUNDS, chained_workload

#: The acceptance floor for the vectorized engine on this workload.
MIN_SPEEDUP = 3.0

#: FootballDB scale of the headline workload (≈2.9k facts at 50% noise).
SCALE = 0.1

REPEATS = 3


def duplicate_registration_audit():
    """Data-quality audit joining playsFor against itself on the team."""
    return (
        ConstraintBuilder("duplicateRegistration")
        .body(quad("x", "playsFor", "y", "t"), quad("z", "playsFor", "y", "t2"))
        .when(not_equal("x", "z"))
.require(compare(IntervalStart(Variable("t")), "!=", IntervalStart(Variable("t2"))))
        .description(
            "two distinct players registered to one club with identical start "
            "dates look like duplicate extractions"
        )
        .kind(ConstraintKind.EQUALITY_GENERATING)
        .soft(0.8)
        .build()
    )


def audited_workload(scale: float):
    """A8's chained workload plus the team-level registration audit."""
    graph, rules, constraints = chained_workload(scale)
    return graph, rules, constraints + [duplicate_registration_audit()]


def time_grounding(engine_class, graph, rules, constraints, repeats=REPEATS):
    """Best-of-N wall-clock grounding time plus the last result."""
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = engine_class(
            graph, rules=rules, constraints=constraints, max_rounds=MAX_ROUNDS
        ).ground()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def engine_sweep():
    """Measure both engines across FootballDB scales (once per session)."""
    series = {}
    for scale in (0.02, 0.05, SCALE):
        graph, rules, constraints = audited_workload(scale)
        indexed_seconds, indexed_result = time_grounding(IndexedGrounder, graph, rules, constraints)
        vectorized_seconds, vectorized_result = time_grounding(
            VectorizedGrounder, graph, rules, constraints
        )
        assert (
            indexed_result.program.canonical_signature()
            == vectorized_result.program.canonical_signature()
        ), f"engines disagree at scale {scale}"
        series[scale] = {
            "facts": len(graph),
            "rounds": vectorized_result.rounds,
            "atoms": vectorized_result.program.num_atoms,
            "clauses": vectorized_result.program.num_clauses,
            "violations": len(vectorized_result.violations),
            "indexed_ms": indexed_seconds * 1000.0,
            "vectorized_ms": vectorized_seconds * 1000.0,
        }
    return series


def test_vectorized_engine_speedup(benchmark, engine_sweep):
    """The tentpole claim: ≥3× over the indexed engine, same program."""
    graph, rules, constraints = audited_workload(SCALE)

    def ground_vectorized():
        return VectorizedGrounder(
            graph, rules=rules, constraints=constraints, max_rounds=MAX_ROUNDS
        ).ground()

    result = benchmark(ground_vectorized)
    assert result.violations, "audit workload should surface conflicts"

    entry = engine_sweep[SCALE]
    speedup = entry["indexed_ms"] / entry["vectorized_ms"]
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized grounder only {speedup:.2f}x faster than indexed "
        f"({entry['vectorized_ms']:.0f} ms vs {entry['indexed_ms']:.0f} ms)"
    )

    rows = []
    for scale, data in sorted(engine_sweep.items()):
        rows.append(
            [
                scale,
                data["facts"],
                data["rounds"],
                data["atoms"],
                data["clauses"],
                f"{data['indexed_ms']:.1f}",
                f"{data['vectorized_ms']:.1f}",
                f"{data['indexed_ms'] / data['vectorized_ms']:.2f}x",
            ]
        )
    lines = format_rows(
        rows,
        [
            "scale", "facts", "rounds", "atoms", "clauses",
            "indexed ms", "vectorized ms", "speedup",
        ],
    )
    lines.append("")
    lines.append(
        "Identical ground programs verified per scale (canonical signatures). "
        "The vectorized engine interns terms to integer ids, stores each "
        "relation as numpy column blocks, and compiles bodies into sorted-"
        "array merge joins with interval masks; the indexed engine joins "
        "tuple-at-a-time over hash indexes."
    )
    record_report("A12", "vectorized vs indexed grounding engine", lines)
    write_bench_json(
        "vectorized_grounding",
        workload={
            "dataset": "footballdb-chained-audited",
            "scale": SCALE,
            "noise_ratio": 0.5,
            "seed": 2017,
            "facts": entry["facts"],
            "max_rounds": MAX_ROUNDS,
            "audit_constraint": "duplicateRegistration",
        },
        timings={
            "indexed_seconds": entry["indexed_ms"] / 1000.0,
            "vectorized_seconds": entry["vectorized_ms"] / 1000.0,
        },
        speedup=speedup,
        stats={
            "rounds": entry["rounds"],
            "atoms": entry["atoms"],
            "clauses": entry["clauses"],
            "violations": entry["violations"],
            "scales_measured": sorted(engine_sweep),
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
