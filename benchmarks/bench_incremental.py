"""A10 — incremental resolution: delta-maintained sessions vs full re-resolves.

The paper's debugging loop is iterative — resolve, repair facts or receive
new evidence, resolve again — which this benchmark simulates as an *edit
stream* over the noisy FootballDB workload: every step mutates 1% of the
evidence facts (half retractions, half re-insertions of previously retracted
facts), then the UTKG is resolved again.  Two servers are compared under the
**same solver configuration** — the component-decomposed exact branch & bound
back-end PR 2 established as the viable exact setup for this shattered
workload (the interaction graph splits into ~300 components; monolithic
branch & bound is hopeless here):

* **full** — a fresh ``TeCoRe.resolve`` per step: re-grounds the whole graph
  and re-solves every component from scratch;
* **incremental** — one ``TeCoRe.session``: the delta-maintained grounder
  folds the edit in (semi-naive tick-window joins for insertions,
  support-set retraction for removals), and the component-level solution
  cache re-solves only the components the edit touched.

Two guarantees are asserted, not just reported:

* every step's incremental MAP state is **bit-identical** to the
  from-scratch one — same merged objective floats, same assignment (the
  back-end is exact, and the session materialises byte-identical component
  sub-programs);
* the incremental session serves the stream at least ``MIN_SPEEDUP`` (5×)
  faster than full re-resolution (measured ~20–30×).

A context section reports the exact-ILP timings: HiGHS is so fast that a
*monolithic* ILP re-resolve is within ~2× of the incremental session — the
cache's win grows with per-component solve cost, which is exactly the
anytime/warm-start regime the session targets.

Results go to ``results/A10.txt`` (human-readable) and
``results/BENCH_incremental.json`` (machine-readable trajectory record).
"""

import random
import time

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import sports_pack

#: The acceptance floor for the incremental session on the edit stream.
MIN_SPEEDUP = 5.0

#: FootballDB scale of the workload (noisy, multi-entity, ~300 components).
SCALE = 0.02
NOISE = 0.5
SEED = 2017

#: Edit stream shape: fraction of facts mutated per step, number of steps.
MUTATION_RATIO = 0.01
STEPS = 6

#: The headline back-end: exact branch & bound, component-decomposed — the
#: PR-2 configuration for this workload (see bench_decomposition.py).
SOLVER = "nrockit-bnb"
SOLVER_OPTIONS = {"time_limit": 300.0}


def build_edit_stream(graph, steps=STEPS, ratio=MUTATION_RATIO, seed=SEED):
    """Deterministic 1%-mutation stream: retract, then re-add last step's."""
    rng = random.Random(seed)
    per_step = max(1, int(len(graph) * ratio))
    working = graph.copy(name="edit-stream")
    stream = []
    previous_removed = []
    for _ in range(steps):
        facts = working.facts()
        removes = rng.sample(facts, per_step)
        adds = previous_removed
        for fact in removes:
            working.remove(fact)
        for fact in adds:
            working.add(fact)
        stream.append((adds, removes))
        previous_removed = removes
    return stream


@pytest.fixture(scope="module")
def workload():
    dataset = generate_footballdb(FootballDBConfig(scale=SCALE, noise_ratio=NOISE, seed=SEED))
    pack = sports_pack()
    graph = dataset.graph
    return graph, list(pack.rules), list(pack.constraints), build_edit_stream(graph)


def replay(system, graph, stream, resolve):
    """Run ``resolve(replica)`` after each edit; returns (seconds, results)."""
    replica = graph.copy(name=graph.name)
    total = 0.0
    results = []
    for adds, removes in stream:
        for fact in removes:
            replica.remove(fact)
        for fact in adds:
            replica.add(fact)
        started = time.perf_counter()
        results.append(resolve(replica))
        total += time.perf_counter() - started
    return total, results


def test_incremental_session_speedup(benchmark, workload):
    """The tentpole claim: ≥5× on the 1%-mutation stream, bit-identical MAP."""
    graph, rules, constraints, stream = workload
    system = TeCoRe(
        rules=rules,
        constraints=constraints,
        solver=SOLVER,
        decompose=True,
        solver_options=dict(SOLVER_OPTIONS),
    )

    # Full re-resolution baseline: fresh grounding + all-component solve.
    full_seconds, full_results = replay(system, graph, stream, system.resolve)

    # Incremental session: delta grounding + component solution cache.
    started = time.perf_counter()
    session = system.session(graph)
    session_setup = time.perf_counter() - started
    incremental_seconds = 0.0
    incremental_results = []
    cache_hits = dirty = total = 0
    for adds, removes in stream:
        started = time.perf_counter()
        result = session.apply(adds=adds, removes=removes)
        incremental_seconds += time.perf_counter() - started
        incremental_results.append(result)
        cache_hits += result.delta.components_cached
        dirty += result.delta.components_dirty
        total += result.delta.components_total

    for incremental, full in zip(incremental_results, full_results):
        assert incremental.objective == full.objective
        assert incremental.solution.assignment == full.solution.assignment

    speedup = full_seconds / incremental_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"incremental session only {speedup:.2f}x faster than full re-resolution "
        f"({incremental_seconds * 1000:.0f} ms vs {full_seconds * 1000:.0f} ms)"
    )

    # One representative timed apply for the pytest-benchmark table (reverts
    # and replays the last edit).
    last_adds, last_removes = stream[-1]
    session.apply(adds=last_removes, removes=last_adds)
    benchmark.pedantic(
        lambda: session.apply(adds=last_adds, removes=last_removes),
        rounds=1,
        iterations=1,
    )

    # Context: the exact-ILP back-end, monolithic full re-resolve vs an
    # ILP-backed session (report only — HiGHS solves the whole program in
    # tens of milliseconds, so per-call overhead bounds the cache's win).
    ilp_system = TeCoRe(rules=rules, constraints=constraints, solver="nrockit")
    ilp_full_seconds, ilp_results = replay(ilp_system, graph, stream, ilp_system.resolve)
    ilp_session = ilp_system.session(graph)
    ilp_incremental_seconds = 0.0
    for (adds, removes), full in zip(stream, ilp_results):
        started = time.perf_counter()
        result = ilp_session.apply(adds=adds, removes=removes)
        ilp_incremental_seconds += time.perf_counter() - started
        assert result.objective == full.objective

    summary = session.state_summary()
    per_step = max(1, int(len(graph) * MUTATION_RATIO))
    rows = [
        [
            f"{SOLVER} (decomposed)",
            f"{full_seconds * 1000:.0f}",
            f"{incremental_seconds * 1000:.0f}",
            f"{speedup:.1f}x",
        ],
        [
            "nrockit ILP (monolithic)",
            f"{ilp_full_seconds * 1000:.0f}",
            f"{ilp_incremental_seconds * 1000:.0f}",
            f"{ilp_full_seconds / ilp_incremental_seconds:.1f}x",
        ],
    ]
    lines = format_rows(rows, ["backend", "full ms (6 steps)", "incremental ms", "speedup"])
    lines += [
        "",
        f"facts / mutated per step : {len(graph)} / {per_step * 2} "
        f"({MUTATION_RATIO:.0%} retract + re-add)",
        f"session setup (initial resolve): {session_setup * 1000:.0f} ms",
        f"components per step      : {total // STEPS} "
        f"({cache_hits / total:.1%} served from the solution cache, "
        f"{dirty / STEPS:.1f} dirty)",
        f"maintained firings/violations: {summary['firings']} / {summary['violations']}",
        "",
        "Per-step MAP states are bit-identical to from-scratch resolution",
        "(same objective floats, same assignments). The session re-grounds",
        "only the delta (semi-naive tick windows + support-set retraction)",
        "and re-solves only the dirty components.",
    ]
    record_report(
        "A10",
        "incremental resolution vs full re-resolution (FootballDB edit stream)",
        lines,
    )

    write_bench_json(
        "incremental",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": NOISE,
            "seed": SEED,
            "facts": len(graph),
            "steps": STEPS,
            "mutation_ratio": MUTATION_RATIO,
            "solver": SOLVER,
            "decompose": True,
        },
        timings={
            "full_seconds": full_seconds,
            "incremental_seconds": incremental_seconds,
            "session_setup_seconds": session_setup,
            "ilp_monolithic_full_seconds": ilp_full_seconds,
            "ilp_incremental_seconds": ilp_incremental_seconds,
        },
        speedup=speedup,
        stats={
            "components_per_step": total // STEPS,
            "components_dirty_per_step": round(dirty / STEPS, 2),
            "cache_hit_rate": round(cache_hits / total, 4),
            "maintained_firings": summary["firings"],
            "maintained_violations": summary["violations"],
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cache_hit_rate"] = round(cache_hits / total, 3)
