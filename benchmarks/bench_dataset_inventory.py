"""E5 — the Section 4 dataset inventory.

The demo uses two datasets:

* FootballDB: ">13K temporal facts for the playsFor relation and >6K facts
  for the birthDate relation";
* Wikidata: "over 6.3 million temporal facts", with playsFor (>4M),
  educatedAt (>6K), memberOf (>23K), occupation (>4.5K) and spouse (>20K).

The generators reproduce FootballDB at full scale and Wikidata at a reduced
scale with the paper's per-relation proportions; the report compares the
generated counts (and, for Wikidata, the proportion-projected full-scale
counts) against the paper's table.  The benchmark times full-scale FootballDB
generation.
"""

from conftest import format_rows, record_report
from repro.datasets import (
    FootballDBConfig,
    PAPER_RELATION_COUNTS,
    PAPER_TOTAL_FACTS,
    WikidataConfig,
    generate_footballdb,
    generate_wikidata,
)
from repro.kg import graph_stats

#: Paper-reported FootballDB relation sizes.
PAPER_FOOTBALLDB = {"playsFor": 13_000, "birthDate": 6_000}

#: Scale used for the Wikidata generator in this benchmark.
WIKIDATA_SCALE = 0.001


def test_footballdb_inventory(benchmark):
    dataset = benchmark.pedantic(
        generate_footballdb,
        args=(FootballDBConfig(scale=1.0, noise_ratio=0.0, seed=2017),),
        rounds=1,
        iterations=1,
    )
    stats = graph_stats(dataset.graph)
    counts = {row["predicate"]: row["facts"] for row in stats.as_rows()}

    # Shape check: the generator meets the paper's ">13K" / ">6K" inventory.
    assert counts["playsFor"] > PAPER_FOOTBALLDB["playsFor"]
    assert counts["birthDate"] > PAPER_FOOTBALLDB["birthDate"]

    rows = [
        [relation, f">{PAPER_FOOTBALLDB[relation]:,}", f"{counts[relation]:,}"]
        for relation in ("playsFor", "birthDate")
    ]
    lines = format_rows(rows, ["relation", "paper (Sec. 4)", "generated (scale=1.0)"])
    lines.append("")
    lines.append(f"total generated facts: {len(dataset.graph):,}")
    record_report("E5-footballdb", "FootballDB inventory", lines)
    benchmark.extra_info.update({f"facts_{k}": v for k, v in counts.items()})


def test_wikidata_inventory(benchmark):
    dataset = benchmark.pedantic(
        generate_wikidata,
        args=(WikidataConfig(scale=WIKIDATA_SCALE, seed=2017),),
        rounds=1,
        iterations=1,
    )
    stats = graph_stats(dataset.graph)
    counts = {row["predicate"]: row["facts"] for row in stats.as_rows()}

    listed = ["playsFor", "memberOf", "spouse", "educatedAt", "occupation"]
    # The generated relation mix must preserve the paper's ordering.
    generated_order = sorted(listed, key=lambda name: -counts.get(name, 0))
    paper_order = sorted(listed, key=lambda name: -PAPER_RELATION_COUNTS[name])
    assert generated_order == paper_order

    rows = []
    for relation in listed:
        generated = counts.get(relation, 0)
        projected = int(round(generated / WIKIDATA_SCALE))
        rows.append(
            [
                relation,
                f"{PAPER_RELATION_COUNTS[relation]:,}",
                f"{generated:,}",
                f"{projected:,}",
            ]
        )
    lines = format_rows(
        rows,
        ["relation", "paper facts", f"generated (scale={WIKIDATA_SCALE})", "projected full scale"],
    )
    lines.append("")
    lines.append(
        f"paper total: {PAPER_TOTAL_FACTS:,} facts; generated total: {len(dataset.graph):,} "
        f"(listed relations only; the 'other' remainder is disabled by default)"
    )
    record_report("E5-wikidata", "Wikidata inventory (scaled, proportions preserved)", lines)
    benchmark.extra_info.update({f"facts_{k}": v for k, v in counts.items()})
