"""A13 — array-native solver kernels vs the object solvers.

The columnar :class:`~repro.logic.GroundProgramArrays` lowering carries the
interned-id/numpy-block layout of the vectorized grounder through clause
construction into the MAP solvers.  This benchmark pins the three kernel
contracts on the noisy FootballDB workload (the same ground program the
decomposition benchmark uses):

* the batched array MaxWalkSAT kernel beats the object local search by at
  least ``MIN_SPEEDUP`` (3×) while matching its solution quality;
* the array ADMM runs the identical iteration over a matrix lowered from the
  arrays — bit-identical truth values, objective, and iteration count;
* branch & bound with array bounding returns bit-identical assignments on
  the workload's components (the exact kernels are drop-in replacements).
"""

import time

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import Grounder, GroundProgramArrays, decompose, sports_pack
from repro.mln import map_inference as mln_map
from repro.psl import map_inference as psl_map

#: Acceptance floor: array MaxWalkSAT vs object MaxWalkSAT wall clock.
MIN_SPEEDUP = 3.0

#: FootballDB scale of the workload (≈1.1k ground atoms at 50% noise).
SCALE = 0.02

#: Shared local-search budget (object and array kernels get the same one).
SEARCH_OPTIONS = {"max_flips": 20_000, "max_restarts": 3, "seed": 2017}

#: Components checked for branch & bound bit-identity (largest first; the
#: monolithic exact solve is the decomposition benchmark's job).
BNB_COMPONENTS = 25


@pytest.fixture(scope="module")
def workload():
    """Noisy multi-entity FootballDB ground program plus its lowering."""
    dataset = generate_footballdb(FootballDBConfig(scale=SCALE, noise_ratio=0.5, seed=2017))
    pack = sports_pack()
    program = (
        Grounder(dataset.graph, rules=pack.rules, constraints=pack.constraints).ground().program
    )
    return program, GroundProgramArrays.from_program(program)


def test_maxwalksat_kernel_speedup(benchmark, workload):
    """The tentpole claim: batched array WalkSAT ≥3× the object solver."""
    program, arrays = workload

    object_solver = mln_map.make_solver("maxwalksat", **SEARCH_OPTIONS)
    started = time.perf_counter()
    object_solution = object_solver.solve(program)
    object_seconds = time.perf_counter() - started

    array_solver = mln_map.make_solver("maxwalksat-array", **SEARCH_OPTIONS)
    array_solution = benchmark.pedantic(array_solver.solve, args=(program,), rounds=1, iterations=1)
    array_seconds = array_solution.stats.runtime_seconds

    assert program.is_feasible(array_solution.assignment)
    # Same search budget, per-component best tracking: the array kernel must
    # not trade quality for speed.
    assert array_solution.objective >= object_solution.objective * (1 - 1e-3)

    speedup = object_seconds / array_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"array MaxWalkSAT only {speedup:.2f}x faster than the object solver "
        f"({array_seconds:.2f} s vs {object_seconds:.2f} s)"
    )

    # ADMM both ways — the lowered potential matrix must reproduce the object
    # iterates bit-for-bit, so the timing comparison is apples-to-apples.
    started = time.perf_counter()
    admm_object = psl_map.solve_map(program, "admm")
    admm_object_seconds = time.perf_counter() - started
    started = time.perf_counter()
    admm_array = psl_map.solve_map(program, "admm-array")
    admm_array_seconds = time.perf_counter() - started
    assert admm_array.truth_values == admm_object.truth_values
    assert admm_array.objective == admm_object.objective
    assert admm_array.stats.iterations == admm_object.stats.iterations

    decomposition = decompose(program)
    rows = [
        [
            "maxwalksat",
            f"{object_seconds:.2f}",
            f"{array_seconds:.2f}",
            f"{speedup:.2f}x",
            f"{array_solution.objective / object_solution.objective:.4f}",
        ],
        [
            "npsl (admm)",
            f"{admm_object_seconds:.3f}",
            f"{admm_array_seconds:.3f}",
            f"{admm_object_seconds / admm_array_seconds:.2f}x",
            "bit-identical",
        ],
    ]
    lines = format_rows(
        rows, ["solver", "object s", "array s", "speedup", "quality (array/object)"]
    )
    lines.append("")
    lines.append(
        f"{arrays.num_atoms} atoms, {arrays.num_clauses} clauses, "
        f"{decomposition.num_components} components; both kernels run the same "
        f"flip budget ({SEARCH_OPTIONS['max_flips']} flips × "
        f"{SEARCH_OPTIONS['max_restarts']} restarts)."
    )
    record_report("A13", "array solver kernels vs object solvers (FootballDB)", lines)
    write_bench_json(
        "solver_kernels",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": 0.5,
            "seed": 2017,
            "solver": "maxwalksat",
            "atoms": arrays.num_atoms,
            "clauses": arrays.num_clauses,
            **SEARCH_OPTIONS,
        },
        timings={
            "object_seconds": object_seconds,
            "array_seconds": array_seconds,
            "admm_object_seconds": admm_object_seconds,
            "admm_array_seconds": admm_array_seconds,
        },
        speedup=speedup,
        stats={
            "components": decomposition.num_components,
            "objective_object": round(object_solution.objective, 6),
            "objective_array": round(array_solution.objective, 6),
            "admm_bit_identical": True,
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["quality_ratio"] = round(
        array_solution.objective / object_solution.objective, 4
    )


def test_branch_and_bound_kernel_is_bit_identical(workload):
    """Exact kernel contract on real components: same assignment, objective,
    and explored-node count as the object branch & bound."""
    program, _ = workload
    decomposition = decompose(program)
    components = sorted(
        decomposition.components, key=lambda component: -component.num_atoms
    )[:BNB_COMPONENTS]
    assert components, "decomposition produced no components"
    for component in components:
        object_solution = mln_map.solve_map(component.program, "branch-and-bound")
        array_solution = mln_map.solve_map(component.program, "branch-and-bound-array")
        assert array_solution.assignment == object_solution.assignment
        assert array_solution.objective == object_solution.objective
        assert array_solution.stats.iterations == object_solution.stats.iterations
