"""A3 — temporal vs static (time-ignoring) debugging.

The introduction motivates TeCoRe with the failure of existing (atemporal)
debugging approaches: they treat "statements that refer to objects at
different points in time" as inconsistent.  On career data this means
non-overlapping engagements — perfectly consistent temporally — are flagged
and removed.  We quantify that on clean FootballDB data (where *nothing*
should be removed) and on noisy data (where precision is what suffers).
"""

from conftest import format_rows, record_report
from repro import TeCoRe
from repro.baselines import StaticResolver
from repro.logic import sports_pack
from repro.metrics import repair_quality

_ROWS: list[list[object]] = []


def _finalise(dataset_noisy) -> None:
    lines = format_rows(_ROWS, ["setting", "method", "removed facts", "precision", "recall"])
    lines.append("")
    lines.append(
        "On clean data the temporal reasoner removes nothing while the static check "
        "flags every multi-club career; on noisy data the static baseline's precision "
        "collapses because correct non-overlapping facts are deleted alongside the noise."
    )
    record_report("A3", "temporal vs static (time-ignoring) conflict resolution", lines)


def test_temporal_on_clean_data(benchmark, footballdb_clean):
    system = TeCoRe.from_pack("sports", solver="nrockit")
    result = benchmark(system.resolve, footballdb_clean.graph)
    assert result.statistics.removed_facts == 0
    _ROWS.append(["clean", "temporal (nrockit)", result.statistics.removed_facts, "1.000", "-"])


def test_static_on_clean_data(benchmark, footballdb_clean):
    resolver = StaticResolver()
    result = benchmark(resolver.resolve, footballdb_clean.graph, sports_pack().constraints)
    # The static check wrongly removes facts from clean data.
    assert result.removed_count > 0
    _ROWS.append(["clean", "static (no time)", result.removed_count, "0.000", "-"])


def test_temporal_on_noisy_data(benchmark, footballdb_noisy):
    system = TeCoRe.from_pack("sports", solver="nrockit")
    result = benchmark(system.resolve, footballdb_noisy.graph)
    quality = repair_quality(result.removed_facts, footballdb_noisy.noise_facts)
    _ROWS.append(
        [
            "noisy",
            "temporal (nrockit)",
            result.statistics.removed_facts,
            f"{quality.precision:.3f}",
            f"{quality.recall:.3f}",
        ]
    )
    assert quality.precision > 0.75


def test_static_on_noisy_data(benchmark, footballdb_noisy):
    resolver = StaticResolver()
    result = benchmark(resolver.resolve, footballdb_noisy.graph, sports_pack().constraints)
    quality = repair_quality(result.removed_facts, footballdb_noisy.noise_facts)
    _ROWS.append(
        [
            "noisy",
            "static (no time)",
            result.removed_count,
            f"{quality.precision:.3f}",
            f"{quality.recall:.3f}",
        ]
    )
    assert quality.precision < 0.75
    _finalise(footballdb_noisy)
