"""A2 — ablation over the MLN MAP back-ends.

DESIGN.md calls out the choice of exact ILP vs cutting-plane aggregation vs
stochastic local search (and the pure-Python branch & bound cross-check).
All four consume the same ground program; exact back-ends must agree on the
objective, the approximate one may fall short but must stay feasible.
"""

import pytest

from conftest import format_rows, record_report
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import Grounder, sports_pack
from repro.mln import make_solver as make_mln_solver

BACKENDS = ["ilp", "cutting-plane", "branch-and-bound", "maxwalksat"]

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def backend_workload():
    """A small-but-non-trivial noisy FootballDB ground program."""
    dataset = generate_footballdb(FootballDBConfig(scale=0.02, noise_ratio=0.5, seed=99))
    pack = sports_pack()
    program = (
        Grounder(dataset.graph, rules=pack.rules, constraints=pack.constraints).ground().program
    )
    return program


@pytest.mark.parametrize("backend", BACKENDS)
def test_mln_backend(benchmark, backend_workload, backend):
    program = backend_workload
    kwargs = {"time_limit": 120.0} if backend in ("ilp",) else {}
    if backend == "branch-and-bound":
        # The pure-Python branch & bound is the slowest back-end by far; cap
        # its budget so the ablation stays quick (it reports a feasible
        # incumbent and "proven optimal: no" when the cap bites).
        kwargs = {"time_limit": 10.0, "max_nodes": 5_000}
    solver = make_mln_solver(backend, **kwargs)

    if backend == "branch-and-bound":
        solution = benchmark.pedantic(solver.solve, args=(program,), rounds=1, iterations=1)
    else:
        solution = benchmark(solver.solve, program)

    assert program.is_feasible(solution.assignment)
    _RESULTS[backend] = {
        "objective": solution.objective,
        "removed": len(solution.removed_facts(program)),
        "optimal": float(solution.stats.optimal),
        "ms": solution.stats.runtime_seconds * 1000.0,
    }
    benchmark.extra_info["objective"] = solution.objective

    exact_reference = _RESULTS.get("ilp")
    if exact_reference is not None and backend == "cutting-plane":
        assert solution.objective == pytest.approx(exact_reference["objective"], rel=1e-6)
    if exact_reference is not None and backend == "maxwalksat":
        assert solution.objective >= 0.95 * exact_reference["objective"]

    if set(_RESULTS) == set(BACKENDS):
        rows = [
            [
                name,
                f"{_RESULTS[name]['objective']:.1f}",
                int(_RESULTS[name]["removed"]),
                "yes" if _RESULTS[name]["optimal"] else "no",
                f"{_RESULTS[name]['ms']:.1f}",
            ]
            for name in BACKENDS
        ]
        lines = format_rows(
            rows, ["backend", "MAP objective", "removed facts", "proven optimal", "ms"]
        )
        lines.append("")
        lines.append(
            f"workload: {program.num_atoms:,} ground atoms, {program.num_clauses:,} clauses "
            "(FootballDB scale 0.02, 50% noise)"
        )
        record_report("A2", "MLN MAP back-end ablation", lines)
