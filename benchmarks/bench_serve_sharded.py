"""A14 — sharded serving: `tecore serve --workers 4` vs per-request loop.

The sharded tier's headline claim: under the same concurrent hot-key
traffic the micro-batched benchmark (A11) uses, the **multi-process**
front-end — one admission/WAL process fanning ``/resolve`` round-robin
over four forked resolver workers, each running its own micro-batcher —
clears the request stream at least ``MIN_SPEEDUP`` (2.5×) faster than a
sequential per-request resolve loop, while staying **bit-identical**:
every served payload equals the direct ``TeCoRe.resolve`` payload for its
graph (wall-clock timing fields excluded, see
``repro.serve.protocol.stable_view``).

Where the speedup comes from: the front-end's content-keyed response LRU
answers hot-key repeats without a pipe round-trip; the cold concurrent
burst that does reach the workers is coalesced and cached by each
worker's own micro-batcher; and the snapshot-key protocol stops
re-shipping repeated documents over the pipes — so the stream pays for
roughly ``TENANTS`` solves per worker instead of one per request.  On
multi-core machines the workers additionally solve the cold burst in
parallel; the floor below is chosen to hold on a single core (the scaling
headroom shows up in the per-worker counters).

The trace-driven mode replays the seeded Zipf/burst workload of A11b
against the sharded server with the client-visible history recorded and
certified serializable — the throughput number comes with a correctness
certificate, worker tags included.

Results go to ``results/A14.txt`` and ``results/BENCH_serve_sharded.json``.
"""

import http.client
import json
import threading
import time

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.kg.io import json_io
from repro.logic import sports_pack
from repro.serve import ServerConfig, encode_result, make_server, stable_view
from repro.serve.protocol import decode_edits, decode_graph
from repro.verify import (
    HistoryRecorder,
    SerializabilityChecker,
    SessionDirectory,
    WorkloadConfig,
    generate_trace,
    request_with_retry,
)

#: Acceptance floor for the sharded service vs the per-request loop.
MIN_SPEEDUP = 2.5

#: FootballDB workload (same family as the serving benchmark A11).
SCALE = 0.01
NOISE = 0.5
SEED = 2017

#: Traffic shape: hot-key fan-out over a few tenant graphs.
TENANTS = 4
REQUESTS = 192
CLIENTS = 16

#: Resolver worker processes behind the front-end.
WORKERS = 4

SOLVER = "nrockit"

MAX_BATCH = 16
BATCH_DELAY = 0.02

#: Trace-driven mode (Zipf hot keys + bursts, see repro.verify): mixed
#: session/resolve traffic is a common cost on both sides, so its floor is
#: lower — the certificate is the point.
TRACE_CLIENTS = 8
TRACE_OPS_PER_CLIENT = 12
TRACE_SESSIONS = 2
TRACE_RESOLVE_VARIANTS = 3
TRACE_MIN_SPEEDUP = 1.25


@pytest.fixture(scope="module")
def workload():
    dataset = generate_footballdb(
        FootballDBConfig(scale=SCALE, noise_ratio=NOISE, seed=SEED)
    )
    pack = sports_pack()
    base = dataset.graph
    tenants = []
    facts = base.facts()
    for tenant in range(TENANTS):
        graph = base.copy(name=f"tenant-{tenant}")
        for fact in facts[tenant * 3 : tenant * 3 + 3]:
            graph.remove(fact)
        tenants.append(graph)
    requests = [tenants[index % TENANTS] for index in range(REQUESTS)]
    return list(pack.rules), list(pack.constraints), tenants, requests


def post_json(address, path, payload, timeout=120.0):
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get_json(address, path, timeout=30.0):
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_sharded_serving_speedup(benchmark, workload):
    """The tentpole claim: ≥2.5× vs the sequential loop, bit-identical."""
    rules, constraints, tenants, requests = workload
    system = TeCoRe(rules=rules, constraints=constraints, solver=SOLVER)

    expected = {
        graph.name: stable_view(encode_result(system.resolve(graph)))
        for graph in tenants
    }

    # Baseline: a sequential per-request resolve loop — single-process
    # serving without batching, the same baseline A11 gates against.
    started = time.perf_counter()
    for graph in requests:
        system.resolve(graph)
    sequential_seconds = time.perf_counter() - started

    # Sharded service: CLIENTS concurrent clients drain the stream through
    # the front-end, which fans it over WORKERS resolver processes.
    server = make_server(
        system,
        ServerConfig(
            port=0,
            workers=WORKERS,
            max_batch=MAX_BATCH,
            batch_delay=BATCH_DELAY,
            queue_limit=REQUESTS,
        ),
    )
    server.run_in_thread()
    try:
        address = server.server_address[:2]
        documents = [{"graph": json_io.to_dict(graph)} for graph in requests]
        outcomes = [None] * len(requests)
        cursor = iter(range(len(requests)))
        cursor_lock = threading.Lock()

        def client():
            connection = http.client.HTTPConnection(*address, timeout=120.0)
            try:
                while True:
                    with cursor_lock:
                        index = next(cursor, None)
                    if index is None:
                        return
                    connection.request(
                        "POST",
                        "/resolve",
                        body=json.dumps(documents[index]),
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read())
                    outcomes[index] = (response.status, stable_view(payload))
            finally:
                connection.close()

        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served_seconds = time.perf_counter() - started

        for graph, outcome in zip(requests, outcomes):
            assert outcome is not None
            status, payload = outcome
            assert status == 200
            assert payload == expected[graph.name], (
                f"sharded response for {graph.name} diverged from direct resolve"
            )

        _, health = get_json(address, "/healthz")
        assert health["workers"] == WORKERS
        assert health["workers_ready"] == WORKERS
        assert len(set(health["worker_pids"])) == WORKERS

        _, stats = get_json(address, "/stats")
        batcher = stats["batcher"]  # summed over the workers
        sharding = stats["sharding"]
        frontend = sharding["frontend_cache"]
        # Conservation: every request was either a front-end cache hit or
        # went over a worker pipe — and the hot-key stream must hit.
        assert frontend["hits"] + batcher["requests"] == REQUESTS
        assert frontend["hits"] > 0, "front-end response cache never hit"
        # The misses that did reach workers are shared there too (worker-
        # side coalescing/caching over the concurrent cold burst).
        assert batcher["resolves"] < batcher["requests"] + frontend["hits"]
        per_worker = [
            worker["batcher"]["requests"] for worker in stats["workers"]
        ]
        assert all(count > 0 for count in per_worker), (
            f"round-robin left a worker idle: {per_worker}"
        )

        # Session affinity parity: a session served by its owning worker
        # must track a direct in-process session bit-for-bit.
        session_graph = tenants[0]
        direct = system.session(session_graph)
        status, created = post_json(
            address, "/sessions", {"graph": json_io.to_dict(session_graph)}
        )
        assert status == 201
        assert stable_view(created["result"]) == stable_view(
            encode_result(direct.result)
        )
        edits = [json_io.fact_to_dict(fact) for fact in session_graph.facts()[:2]]
        status, edited = post_json(
            address,
            "/sessions/" + created["session_id"] + "/edits",
            {"removes": edits},
        )
        assert status == 200
        direct_result = direct.apply(
            removes=[session_graph.facts()[0], session_graph.facts()[1]]
        )
        assert stable_view(edited["result"]) == stable_view(
            encode_result(direct_result)
        )
        resolve_p99 = stats["endpoints"]["POST /resolve"]["p99_ms"]
    finally:
        server.close()

    speedup = sequential_seconds / served_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"sharded serving only {speedup:.2f}x faster than the sequential "
        f"loop ({served_seconds * 1000:.0f} ms vs {sequential_seconds * 1000:.0f} ms)"
    )

    # One representative request for the pytest-benchmark table.
    server = make_server(system, ServerConfig(port=0, workers=WORKERS))
    server.run_in_thread()
    try:
        address = server.server_address[:2]
        benchmark.pedantic(
            lambda: post_json(address, "/resolve", documents[0]),
            rounds=1,
            iterations=1,
        )
    finally:
        server.close()

    rows = [
        [
            "sequential per-request loop",
            f"{sequential_seconds * 1000:.0f}",
            f"{REQUESTS / sequential_seconds:.1f}",
            "1.0x",
        ],
        [
            f"sharded serve ({WORKERS} workers, {CLIENTS} clients)",
            f"{served_seconds * 1000:.0f}",
            f"{REQUESTS / served_seconds:.1f}",
            f"{speedup:.1f}x",
        ],
    ]
    lines = format_rows(
        rows, ["server", f"{REQUESTS} requests (ms)", "req/s", "speedup"]
    )
    lines += [
        "",
        f"workload: {TENANTS} tenant graphs x {REQUESTS // TENANTS} requests each "
        f"({len(tenants[0])} facts per graph, FootballDB scale={SCALE} noise={NOISE})",
        f"sharding: {WORKERS} resolver workers, round-robin /resolve, "
        f"per-worker requests {per_worker}, "
        f"front-end cache {frontend['hits']} hits / {frontend['misses']} misses, "
        f"{sharding['snapshots']['omitted']} documents elided by snapshot keys",
        f"batching (summed): {batcher['batches']} batches, "
        f"{batcher['coalesced']} coalesced, "
        f"{batcher['response_cache_hits']} response-cache hits, "
        f"{batcher['resolves']} solves",
        f"POST /resolve p99: {resolve_p99:.1f} ms",
        "",
        "Every served payload (one-shot and session) is bit-identical to the",
        "direct TeCoRe.resolve / ResolutionSession result for its graph,",
        "modulo wall-clock timing fields.",
    ]
    record_report(
        "A14",
        "sharded multi-process serving vs per-request loop (FootballDB tenants)",
        lines,
    )

    write_bench_json(
        "serve_sharded",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": NOISE,
            "seed": SEED,
            "tenants": TENANTS,
            "requests": REQUESTS,
            "clients": CLIENTS,
            "workers": WORKERS,
            "solver": SOLVER,
            "max_batch": MAX_BATCH,
            "batch_delay": BATCH_DELAY,
        },
        timings={
            "sequential_seconds": sequential_seconds,
            "served_seconds": served_seconds,
        },
        speedup=speedup,
        stats={
            "batches": batcher["batches"],
            "coalesced_requests": batcher["coalesced"],
            "worker_cache_hits": batcher["response_cache_hits"],
            "frontend_cache_hits": frontend["hits"],
            "solves": batcher["resolves"],
            "snapshot_documents_elided": sharding["snapshots"]["omitted"],
            "per_worker_requests": per_worker,
            "resolve_p99_ms": resolve_p99,
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["workers"] = WORKERS


# --------------------------------------------------------------------------- #
# Trace-driven mode: the A11b workload over the sharded server, certified
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def trace_setup():
    dataset = generate_footballdb(
        FootballDBConfig(scale=SCALE, noise_ratio=NOISE, seed=SEED)
    )
    pack = sports_pack()
    config = WorkloadConfig(
        seed=SEED,
        clients=TRACE_CLIENTS,
        ops_per_client=TRACE_OPS_PER_CLIENT,
        sessions=TRACE_SESSIONS,
        zipf_alpha=1.5,
        resolve_ratio=0.85,
        read_ratio=0.6,
        resolve_variants=TRACE_RESOLVE_VARIANTS,
        resolve_span=(0.8, 1.0),
        noise="mixed",
        malformed_ratio=0.0,
        burst_size=4,
        burst_gap=0.002,
    )
    trace = generate_trace(dataset.graph, config)
    return list(pack.rules), list(pack.constraints), trace


class _HttpTraceClient(threading.Thread):
    """One trace client over a keep-alive connection (shared retry policy)."""

    def __init__(self, client_id, program, address, directory, barrier):
        super().__init__(name=f"sharded-trace-{client_id}", daemon=True)
        self.client_id = client_id
        self.program = program
        self.address = address
        self.directory = directory
        self.barrier = barrier
        self.retries = 0
        self.error = None

    def run(self):
        try:
            connection = http.client.HTTPConnection(*self.address, timeout=120.0)
            try:
                self.barrier.wait()
                for op in self.program:
                    if op.delay > 0:
                        time.sleep(op.delay)
                    self._issue(connection, op)
            finally:
                connection.close()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            self.error = exc

    def _request(self, connection, method, path, document=None):
        status, payload, retries = request_with_retry(connection, method, path, document)
        self.retries += retries
        return status, payload

    def _issue(self, connection, op):
        if op.kind == "resolve":
            body = op.body or {}
            if op.include_graphs:
                body = {"graph": body, "include_graphs": True}
            self._request(connection, "POST", "/resolve", body)
        elif op.kind == "session_create":
            status, payload = self._request(connection, "POST", "/sessions", op.body)
            self.directory.publish(
                op.session, payload.get("session_id") if status == 201 else None
            )
        else:
            sid = self.directory.resolve(op.session)
            if op.kind == "session_edit":
                self._request(connection, "POST", f"/sessions/{sid}/edits", op.body)
            elif op.kind == "session_read":
                query = "?include_graphs=1" if op.include_graphs else ""
                self._request(connection, "GET", f"/sessions/{sid}/result{query}")
            else:
                self._request(connection, "DELETE", f"/sessions/{sid}")


def test_sharded_trace_certificate(trace_setup):
    """Trace mode over the sharded server, checked serializable.

    The same two claims as A11b, now across process boundaries: realistic
    skewed traffic drains at least ``TRACE_MIN_SPEEDUP`` faster than the
    direct per-request loop, and the recorded client-visible history —
    every operation tagged with the worker that served it — passes
    black-box serializability checking.
    """
    rules, constraints, trace = trace_setup
    system = TeCoRe(rules=rules, constraints=constraints, solver=SOLVER)

    resolve_graphs = []
    creates = {}
    edit_stream = []
    for program in trace.programs:
        for op in program:
            if op.kind == "resolve":
                resolve_graphs.append(decode_graph(op.body))
            elif op.kind == "session_create":
                creates[op.session] = decode_graph(op.body)
            elif op.kind == "session_edit":
                edit_stream.append((op.session, *decode_edits(op.body)))

    started = time.perf_counter()
    for graph in resolve_graphs:
        system.resolve(graph)
    direct_sessions = {
        index: system.session(graph) for index, graph in creates.items()
    }
    for session_index, adds, removes in edit_stream:
        direct_sessions[session_index].apply(adds=adds, removes=removes)
    sequential_seconds = time.perf_counter() - started

    recorder = HistoryRecorder()
    server = make_server(
        system,
        ServerConfig(
            port=0,
            workers=WORKERS,
            max_batch=MAX_BATCH,
            batch_delay=BATCH_DELAY,
            queue_limit=256,
            max_sessions=TRACE_SESSIONS + 4,
        ),
        recorder=recorder,
    )
    server.run_in_thread()
    try:
        address = server.server_address[:2]
        directory = SessionDirectory(trace.config.sessions)
        barrier = threading.Barrier(len(trace.programs))
        clients = [
            _HttpTraceClient(client_id, program, address, directory, barrier)
            for client_id, program in enumerate(trace.programs)
        ]
        started = time.perf_counter()
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        served_seconds = time.perf_counter() - started
        for client in clients:
            assert client.error is None, (
                f"trace client {client.client_id} failed: {client.error}"
            )
        _, stats = get_json(address, "/stats")
        batcher = stats["batcher"]
        sharding = stats["sharding"]
    finally:
        server.close()

    total_retries = sum(client.retries for client in clients)
    history = recorder.history(
        {
            "workload": "bench trace sharded",
            "seed": SEED,
            "transport": "http",
            "workers": WORKERS,
        }
    )
    assert len(history) == trace.total_ops + total_retries
    # Worker provenance: the sharded front-end tags every completed op.
    tagged = [op.worker for op in history if op.worker is not None]
    assert tagged, "no operation carries a worker tag"
    assert all(0 <= worker < WORKERS for worker in tagged)
    report = SerializabilityChecker(system).check(history)
    assert report.ok, f"sharded trace run is not serializable: {report.summary()}"

    speedup = sequential_seconds / served_seconds
    assert speedup >= TRACE_MIN_SPEEDUP, (
        f"sharded trace serving only {speedup:.2f}x faster than the direct "
        f"per-request loop ({served_seconds * 1000:.0f} ms vs "
        f"{sequential_seconds * 1000:.0f} ms)"
    )

    rows = [
        [
            "direct per-request loop",
            f"{sequential_seconds * 1000:.0f}",
            f"{trace.total_ops / sequential_seconds:.1f}",
            "1.0x",
        ],
        [
            f"sharded trace serve ({WORKERS} workers)",
            f"{served_seconds * 1000:.0f}",
            f"{trace.total_ops / served_seconds:.1f}",
            f"{speedup:.1f}x",
        ],
    ]
    lines = format_rows(
        rows, ["execution", f"{trace.total_ops} trace ops (ms)", "ops/s", "speedup"]
    )
    lines += [
        "",
        f"trace: {TRACE_CLIENTS} clients x {TRACE_OPS_PER_CLIENT} ops, "
        f"{TRACE_SESSIONS} sessions, zipf_alpha=1.5, bursts of 4 (seed {SEED})",
        f"sharding: {WORKERS} workers, "
        f"{sharding['snapshots']['omitted']} documents elided, "
        f"{len(tagged)} ops worker-tagged",
        f"serving decisions (summed): {batcher['batches']} batches, "
        f"{batcher['coalesced']} coalesced, "
        f"{batcher['response_cache_hits']} response-cache hits, "
        f"{batcher['resolves']} solves, {total_retries} client retries",
        f"serializability: {report.summary()}",
    ]
    record_report(
        "A14b",
        "sharded trace-driven serving with serializability certificate",
        lines,
    )

    write_bench_json(
        "serve_sharded_trace",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": NOISE,
            "seed": SEED,
            "clients": TRACE_CLIENTS,
            "ops_per_client": TRACE_OPS_PER_CLIENT,
            "sessions": TRACE_SESSIONS,
            "workers": WORKERS,
            "zipf_alpha": 1.5,
            "solver": SOLVER,
            "transport": "http",
        },
        timings={
            "sequential_seconds": sequential_seconds,
            "served_seconds": served_seconds,
        },
        speedup=speedup,
        stats={
            "trace_ops": trace.total_ops,
            "worker_tagged_ops": len(tagged),
            "batches": batcher["batches"],
            "coalesced_requests": batcher["coalesced"],
            "response_cache_hits": batcher["response_cache_hits"],
            "solves": batcher["resolves"],
            "snapshot_documents_elided": sharding["snapshots"]["omitted"],
            "retries": total_retries,
            "checker_search_steps": report.stats["search_steps"],
            "checker_violations": 0,
        },
    )
