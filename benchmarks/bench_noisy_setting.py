"""E6 — the "highly noisy setting".

"TeCoRe has been successfully tested in a highly noisy setting where there
are as many erroneous temporal facts as the correct ones."  We plant exactly
that (noise ratio 1.0), repair with both reasoner families and both baselines,
and score every repair against the planted ground truth.  The expected shape:
both MAP paths recover the noise with high precision and recall, the greedy
baseline is close but worse or equal, and the static (time-ignoring) baseline
collapses in precision.
"""

import pytest

from conftest import format_rows, record_report
from repro import TeCoRe
from repro.baselines import GreedyResolver, StaticResolver
from repro.logic import sports_pack
from repro.metrics import repair_quality

_RESULTS: dict[str, dict[str, float]] = {}
_EXPECTED_METHODS = ("nrockit", "npsl", "greedy", "static")


def _record(method: str, removed_facts, dataset) -> None:
    quality = repair_quality(removed_facts, dataset.noise_facts)
    _RESULTS[method] = {
        "removed": len(removed_facts),
        "precision": quality.precision,
        "recall": quality.recall,
        "f1": quality.f1,
    }
    if set(_RESULTS) == set(_EXPECTED_METHODS):
        _write_report(dataset)


def _write_report(dataset) -> None:
    rows = [
        [
            method,
            _RESULTS[method]["removed"],
            f"{_RESULTS[method]['precision']:.3f}",
            f"{_RESULTS[method]['recall']:.3f}",
            f"{_RESULTS[method]['f1']:.3f}",
        ]
        for method in _EXPECTED_METHODS
    ]
    lines = format_rows(rows, ["method", "removed", "precision", "recall", "F1"])
    lines.append("")
    lines.append(
        f"workload: {len(dataset.graph):,} facts, of which {len(dataset.noise_facts):,} "
        f"planted erroneous (noise ratio {dataset.noise_ratio:.2f})"
    )
    record_report("E6", "repair quality in the highly noisy setting (50% erroneous facts)", lines)


@pytest.mark.parametrize("solver", ["nrockit", "npsl"])
def test_map_repair_quality(benchmark, footballdb_noisy, solver):
    system = TeCoRe.from_pack("sports", solver=solver)
    result = benchmark(system.resolve, footballdb_noisy.graph)
    quality = repair_quality(result.removed_facts, footballdb_noisy.noise_facts)
    assert quality.precision > 0.75
    assert quality.recall > 0.75
    _record(solver, result.removed_facts, footballdb_noisy)
    benchmark.extra_info["f1"] = quality.f1


def test_greedy_baseline_quality(benchmark, footballdb_noisy):
    resolver = GreedyResolver()
    result = benchmark(resolver.resolve, footballdb_noisy.graph, sports_pack().constraints)
    _record("greedy", result.removed_facts, footballdb_noisy)
    benchmark.extra_info["removed"] = result.removed_count


def test_static_baseline_quality(benchmark, footballdb_noisy):
    resolver = StaticResolver()
    result = benchmark(resolver.resolve, footballdb_noisy.graph, sports_pack().constraints)
    quality = repair_quality(result.removed_facts, footballdb_noisy.noise_facts)
    _record("static", result.removed_facts, footballdb_noisy)
    # The intro's claim: ignoring time over-removes, so precision collapses.
    assert quality.precision < 0.75
    benchmark.extra_info["precision"] = quality.precision
