"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table/figure/claim of the paper (see the
per-experiment index in DESIGN.md).  Besides the pytest-benchmark timings,
each benchmark writes the paper-style rows to ``benchmarks/results/<id>.txt``
and registers them for the terminal summary, so running

    pytest benchmarks/ --benchmark-only

prints both the timing table and the reproduced experiment tables.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import FootballDBConfig, generate_footballdb, ranieri_graph

#: Directory the per-experiment tables are written to.
RESULTS_DIR = Path(__file__).parent / "results"

_REPORTS: dict[str, str] = {}


def record_report(experiment_id: str, title: str, lines: list[str]) -> str:
    """Save an experiment report to disk and register it for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = f"{experiment_id}: {title}\n" + "-" * 72 + "\n" + "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(body, encoding="utf-8")
    _REPORTS[experiment_id] = body
    return body


def format_rows(rows: list[list[object]], headers: list[str]) -> list[str]:
    """Fixed-width table formatting shared by the benchmark reports."""
    table = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[column]) for row in table) for column in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103 - pytest hook
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "TeCoRe reproduction: experiment tables")
    for experiment_id in sorted(_REPORTS):
        terminalreporter.write_line("")
        for line in _REPORTS[experiment_id].rstrip().splitlines():
            terminalreporter.write_line(line)


# --------------------------------------------------------------------------- #
# Shared fixtures (session-scoped: datasets are deterministic and reusable)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def ranieri():
    """The paper's Figure 1 UTKG."""
    return ranieri_graph()


@pytest.fixture(scope="session")
def footballdb_clean():
    """Mid-size clean FootballDB (solver-comparison workload)."""
    return generate_footballdb(FootballDBConfig(scale=0.05, noise_ratio=0.0, seed=2017))


@pytest.fixture(scope="session")
def footballdb_noisy():
    """Mid-size FootballDB in the paper's 'highly noisy setting' (50% noise)."""
    return generate_footballdb(FootballDBConfig(scale=0.05, noise_ratio=1.0, seed=2017))
