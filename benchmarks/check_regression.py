"""Benchmark-regression gate over the ``BENCH_*.json`` records.

The pinned benchmarks write machine-readable speedup records to
``benchmarks/results/BENCH_<name>.json`` (see ``_report.py``).  CI used to
only *upload* them; this script *checks* them: every freshly produced record
is compared against the committed baseline in ``benchmarks/baselines.json``
and the job fails when a headline speedup regresses below the tolerance
band.

Usage::

    python benchmarks/check_regression.py                # gate (CI step)
    python benchmarks/check_regression.py --tolerance 0.5
    python benchmarks/check_regression.py --update       # refresh baselines
    python benchmarks/check_regression.py --summary out.md   # markdown table

``--summary`` additionally writes a GitHub-flavoured markdown table of every
fresh speedup against its baseline and floor — CI points it at
``$GITHUB_STEP_SUMMARY`` so the numbers land on the run's summary page
without digging through logs.

Exit codes: 0 — all gated benchmarks within band; 1 — at least one
regression; 2 — malformed input (unreadable record or baseline file).

The tolerance is deliberately generous by default (a fresh speedup may fall
to ``(1 - tolerance) * baseline`` before failing) because CI machines are
noisy; the point of the gate is to catch *structural* regressions — a
speedup collapsing from 4x to 1x — not 10% jitter.  Benchmarks without a
baseline entry warn instead of failing, so adding a new benchmark does not
require touching the baseline file in the same commit (a later ``--update``
records it).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default locations, relative to this file.
RESULTS_DIR = Path(__file__).parent / "results"
BASELINES_FILE = Path(__file__).parent / "baselines.json"

#: A fresh speedup may fall to (1 - TOLERANCE) * baseline before failing.
DEFAULT_TOLERANCE = 0.4


def load_records(results_dir: Path) -> dict[str, dict]:
    """All ``BENCH_*.json`` records in ``results_dir``, keyed by benchmark name.

    Raises ``ValueError`` for unreadable or schema-less files — a malformed
    record means the producing benchmark is broken, which the gate must not
    paper over.
    """
    records: dict[str, dict] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable benchmark record {path.name}: {exc}") from exc
        if not isinstance(payload, dict) or "benchmark" not in payload:
            raise ValueError(f"benchmark record {path.name} has no 'benchmark' field")
        records[str(payload["benchmark"])] = payload
    return records


def load_baselines(baselines_file: Path) -> dict[str, dict]:
    """The committed baseline map ``{benchmark: {"speedup": x}}``."""
    try:
        payload = json.loads(baselines_file.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baselines file {baselines_file}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"baselines file {baselines_file} must hold an object")
    for name, entry in payload.items():
        if not isinstance(entry, dict):
            raise ValueError(
                f"baseline entry {name!r} must be an object like "
                f'{{"speedup": 4.2}}, got {entry!r}'
            )
    return payload


def check(
    records: dict[str, dict],
    baselines: dict[str, dict],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Compare records against baselines; returns (report lines, failures)."""
    lines: list[str] = []
    failures: list[str] = []
    for name, record in sorted(records.items()):
        speedup = record.get("speedup")
        if speedup is None:
            lines.append(f"  - {name}: no speedup field, not gated")
            continue
        baseline = baselines.get(name, {}).get("speedup")
        if baseline is None:
            lines.append(
                f"  ? {name}: {speedup:.2f}x, no committed baseline "
                "(new benchmark? record it with --update)"
            )
            continue
        floor = baseline * (1.0 - tolerance)
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x regressed below "
                f"{floor:.2f}x (baseline {baseline:.2f}x, tolerance {tolerance:.0%})"
            )
            lines.append(f"  ✗ {name}: {speedup:.2f}x < floor {floor:.2f}x  REGRESSION")
        else:
            lines.append(
                f"  ✓ {name}: {speedup:.2f}x (baseline {baseline:.2f}x, " f"floor {floor:.2f}x)"
            )
    for name in sorted(set(baselines) - set(records)):
        lines.append(f"  ? {name}: baseline present but no fresh record (did it run?)")
    return lines, failures


def summary_table(
    records: dict[str, dict],
    baselines: dict[str, dict],
    tolerance: float,
) -> str:
    """GitHub-flavoured markdown table of fresh speedups vs baselines."""
    rows = ["| benchmark | speedup | baseline | floor | status |", "|---|---|---|---|---|"]
    for name, record in sorted(records.items()):
        speedup = record.get("speedup")
        if speedup is None:
            rows.append(f"| {name} | — | — | — | not gated |")
            continue
        baseline = baselines.get(name, {}).get("speedup")
        if baseline is None:
            rows.append(f"| {name} | {speedup:.2f}x | — | — | ⚠️ no baseline |")
            continue
        floor = baseline * (1.0 - tolerance)
        status = "✅" if speedup >= floor else "❌ regression"
        rows.append(f"| {name} | {speedup:.2f}x | {baseline:.2f}x | {floor:.2f}x | {status} |")
    for name in sorted(set(baselines) - set(records)):
        rows.append(f"| {name} | missing | {baselines[name]['speedup']:.2f}x | — | ⚠️ no record |")
    return "### Benchmark speedups\n\n" + "\n".join(rows) + "\n"


def update_baselines(records: dict[str, dict], baselines_file: Path) -> None:
    """Rewrite the baseline file from the fresh records' speedups."""
    payload = {
        name: {"speedup": record["speedup"]}
        for name, record in sorted(records.items())
        if record.get("speedup") is not None
    }
    baselines_file.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a BENCH_*.json speedup regresses below its baseline"
    )
    parser.add_argument(
        "--results-dir", type=Path, default=RESULTS_DIR, help="directory of BENCH_*.json"
    )
    parser.add_argument(
        "--baselines", type=Path, default=BASELINES_FILE, help="committed baseline file"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline (default 0.4)",
    )
    parser.add_argument("--update", action="store_true", help="rewrite the baseline file and exit")
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        metavar="FILE",
        help="append a markdown speedup table to FILE (use $GITHUB_STEP_SUMMARY in CI)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print(f"error: tolerance must lie in [0, 1), got {args.tolerance}")
        return 2

    try:
        records = load_records(args.results_dir)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if args.update:
        update_baselines(records, args.baselines)
        print(f"baselines updated from {len(records)} record(s) -> {args.baselines}")
        return 0
    try:
        baselines = load_baselines(args.baselines)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    if args.summary is not None:
        with args.summary.open("a", encoding="utf-8") as handle:
            handle.write(summary_table(records, baselines, args.tolerance))

    lines, failures = check(records, baselines, args.tolerance)
    print("benchmark-regression gate:")
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nall gated benchmarks within the tolerance band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
