"""Machine-readable benchmark reports.

Every headline benchmark writes — next to its human-readable ``.txt`` table —
a ``benchmarks/results/BENCH_<name>.json`` document so the performance
trajectory of the repository can be tracked across commits (CI uploads the
files as workflow artifacts).  The schema is deliberately small and stable:

.. code-block:: json

    {
        "benchmark": "incremental",
        "workload": {"dataset": "footballdb", "scale": 0.05, "...": "..."},
        "timings": {"full_seconds": 1.2, "incremental_seconds": 0.2},
        "speedup": 6.1,
        "stats": {"components": 300, "cache_hit_rate": 0.98},
        "python": "3.11.8",
        "platform": "Linux-..."
    }

``workload`` describes the input, ``timings`` holds wall-clock seconds,
``speedup`` the headline ratio (when the benchmark has one), and ``stats``
any benchmark-specific counters (component/cache statistics, program sizes).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Optional

#: Directory shared with the ``.txt`` experiment tables (see conftest.py).
RESULTS_DIR = Path(__file__).parent / "results"


def write_bench_json(
    name: str,
    workload: dict[str, Any],
    timings: dict[str, float],
    speedup: Optional[float] = None,
    stats: Optional[dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return the path written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload: dict[str, Any] = {
        "benchmark": name,
        "workload": workload,
        "timings": {key: round(value, 6) for key, value in timings.items()},
    }
    if speedup is not None:
        payload["speedup"] = round(speedup, 3)
    if stats is not None:
        payload["stats"] = stats
    payload["python"] = platform.python_version()
    payload["platform"] = platform.platform()
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path
