"""E7 — the derived-fact confidence threshold.

"Besides, TeCoRe allows to set a threshold value and remove derived facts
below that."  We expand a Wikidata-style KG with inference rules whose derived
confidences differ, sweep the threshold, and report how many derived facts
survive each value (a monotonically decreasing series).
"""

import pytest

from conftest import format_rows, record_report
from repro import TeCoRe
from repro.core import sweep_thresholds
from repro.datasets import WikidataConfig, generate_wikidata
from repro.logic import RuleBuilder, quad

#: Sweep values chosen to straddle the derived confidences used by the rules
#: (0.6 for educatedAt-derived facts, 0.9 for memberOf-derived facts, 0.95 for
#: the symmetric spouse facts), so each step visibly filters a rule's output.
THRESHOLDS = [0.0, 0.7, 0.92, 0.97]


@pytest.fixture(scope="module")
def wikidata_dataset():
    return generate_wikidata(WikidataConfig(scale=0.0005, noise_ratio=0.2, seed=7))


@pytest.fixture(scope="module")
def inference_system():
    """Biography pack plus two rules with different derived confidences."""
    system = TeCoRe.from_pack("biography", solver="npsl")
    system.add_rule(
        RuleBuilder("educatedImpliesAffiliated")
        .body(quad("x", "educatedAt", "y", "t"))
        .head(quad("x", "affiliatedWith", "y", "t"))
        .weight(1.2)
        .derived_confidence(0.6)
        .build()
    )
    system.add_rule(
        RuleBuilder("spouseIsSymmetric")
        .body(quad("x", "spouse", "y", "t"))
        .head(quad("y", "spouseOf", "x", "t"))
        .weight(2.0)
        .derived_confidence(0.95)
        .build()
    )
    return system


def test_threshold_sweep(benchmark, wikidata_dataset, inference_system):
    result = benchmark(inference_system.resolve, wikidata_dataset.graph)

    derived = list(result.inferred_facts) + list(result.inferred_below_threshold)
    assert derived, "the inference rules must derive at least some facts"
    sweep = sweep_thresholds(derived, THRESHOLDS)

    # The series must be monotonically non-increasing and actually filter.
    counts = [count for _, count in sweep]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > counts[-1]

    rows = [
        [f"{threshold:.1f}", count, f"{count / max(counts[0], 1) * 100:.0f}%"]
        for threshold, count in sweep
    ]
    lines = format_rows(rows, ["threshold", "derived facts kept", "fraction of all derived"])
    lines.append("")
    lines.append(
        f"{len(derived)} derived facts in total; rule 'spouseIsSymmetric' derives at 0.95 "
        "confidence, 'educatedImpliesAffiliated' and the pack rule at 0.6-0.9"
    )
    record_report("E7", "derived-fact confidence threshold sweep", lines)
    benchmark.extra_info["sweep"] = dict(sweep)
