"""A9 — component-decomposed MAP inference: monolithic vs decomposed solve.

On the multi-entity FootballDB workload the ground program's interaction
graph splits into hundreds of small components (temporal constraints only
couple facts that share an entity and overlap in time), so the MAP solve
factorises.  This benchmark pins two guarantees:

* component statistics of the workload (the graph really shatters — hundreds
  of components, the largest a few dozen atoms at most);
* the decomposed solve with ``jobs=4`` beats the monolithic solve by at
  least ``MIN_SPEEDUP`` (2×) on the superlinear branch & bound back-end,
  with a bit-identical MAP objective.

A context section also reports the exact-ILP timings both ways (HiGHS is so
fast on this workload that decomposition overhead roughly breaks even there
— the win comes from back-ends whose cost grows superlinearly in program
size, and from parallel hardware).
"""

import time
from functools import partial

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import Grounder, decompose, sports_pack
from repro.mln import map_inference as mln_map
from repro.solvers import DecomposedSolver

#: The acceptance floor for the decomposed solve on the headline back-end.
MIN_SPEEDUP = 2.0

#: FootballDB scale of the workload (≈1.1k ground atoms at 50% noise).
SCALE = 0.02

#: Worker processes for the parallel decomposed solve.
JOBS = 4

#: The headline back-end: pure-Python branch & bound, whose cost grows
#: steeply with program size — exactly the regime decomposition targets.
BACKEND = "branch-and-bound"
BACKEND_OPTIONS = {"time_limit": 300.0}


@pytest.fixture(scope="module")
def workload():
    """Noisy multi-entity FootballDB ground program plus its decomposition."""
    dataset = generate_footballdb(FootballDBConfig(scale=SCALE, noise_ratio=0.5, seed=2017))
    pack = sports_pack()
    program = (
        Grounder(dataset.graph, rules=pack.rules, constraints=pack.constraints).ground().program
    )
    return program, decompose(program)


def test_component_statistics(workload):
    """The conflict graph shatters: many small independent components."""
    program, decomposition = workload
    summary = decomposition.summary()

    assert summary["components"] >= 200, summary
    assert summary["largest_component"] <= 50, summary
    covered = sum(decomposition.component_sizes()) + summary["unconstrained_atoms"]
    assert covered == program.num_atoms

    sizes = decomposition.component_sizes()
    lines = [
        f"ground atoms        : {summary['atoms']}",
        f"ground clauses      : {summary['clauses']}",
        f"components          : {summary['components']}",
        f"largest component   : {summary['largest_component']} atoms",
        f"median component    : {sizes[len(sizes) // 2]} atoms",
        f"singleton components: {summary['singleton_components']}",
        f"unconstrained atoms : {summary['unconstrained_atoms']}",
    ]
    record_report("A9a", "interaction-graph component statistics (FootballDB)", lines)


def test_decomposed_speedup(benchmark, workload):
    """The tentpole claim: ≥2× with jobs=4, bit-identical MAP objective."""
    program, decomposition = workload

    monolithic_solver = mln_map.make_solver(BACKEND, **BACKEND_OPTIONS)
    started = time.perf_counter()
    monolithic = monolithic_solver.solve(program)
    monolithic_seconds = time.perf_counter() - started

    decomposed_solver = DecomposedSolver(
        partial(mln_map.make_solver, BACKEND, **BACKEND_OPTIONS), jobs=JOBS
    )
    decomposed = benchmark.pedantic(
        decomposed_solver.solve, args=(program,), rounds=1, iterations=1
    )
    decomposed_seconds = decomposed.stats.runtime_seconds

    assert decomposed.objective == monolithic.objective
    assert program.is_feasible(decomposed.assignment)

    speedup = monolithic_seconds / decomposed_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"decomposed solve only {speedup:.2f}x faster than monolithic "
        f"({decomposed_seconds:.1f} s vs {monolithic_seconds:.1f} s)"
    )

    # Context: the exact ILP back-end both ways (report only — HiGHS is fast
    # enough here that per-component call overhead eats the algorithmic win).
    started = time.perf_counter()
    ilp_monolithic = mln_map.solve_map(program, "ilp")
    ilp_monolithic_seconds = time.perf_counter() - started
    started = time.perf_counter()
    ilp_decomposed = mln_map.solve_map(program, "ilp", decompose=True, jobs=JOBS)
    ilp_decomposed_seconds = time.perf_counter() - started
    assert ilp_decomposed.objective == ilp_monolithic.objective

    rows = [
        [
            BACKEND,
            f"{monolithic_seconds:.2f}",
            f"{decomposed_seconds:.2f}",
            f"{speedup:.2f}x",
            f"{decomposed.objective:.2f}",
        ],
        [
            "ilp",
            f"{ilp_monolithic_seconds:.2f}",
            f"{ilp_decomposed_seconds:.2f}",
            f"{ilp_monolithic_seconds / ilp_decomposed_seconds:.2f}x",
            f"{ilp_decomposed.objective:.2f}",
        ],
    ]
    lines = format_rows(
        rows, ["backend", "monolithic s", f"decomposed s (jobs={JOBS})", "speedup", "objective"]
    )
    lines.append("")
    lines.append(
        f"{decomposition.num_components} components, largest "
        f"{decomposition.component_sizes()[0]} atoms; objectives bit-identical "
        "both ways (components never share a clause, so the MAP factorises)."
    )
    record_report("A9b", "monolithic vs decomposed MAP solve (FootballDB)", lines)
    summary = decomposition.summary()
    write_bench_json(
        "decomposition",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": 0.5,
            "seed": 2017,
            "solver": BACKEND,
            "jobs": JOBS,
            "atoms": summary["atoms"],
            "clauses": summary["clauses"],
        },
        timings={
            "monolithic_seconds": monolithic_seconds,
            "decomposed_seconds": decomposed_seconds,
            "ilp_monolithic_seconds": ilp_monolithic_seconds,
            "ilp_decomposed_seconds": ilp_decomposed_seconds,
        },
        speedup=speedup,
        stats={
            "components": summary["components"],
            "largest_component": summary["largest_component"],
            "singleton_components": summary["singleton_components"],
            "unconstrained_atoms": summary["unconstrained_atoms"],
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["components"] = decomposition.num_components
