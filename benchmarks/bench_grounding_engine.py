"""A8 — indexed grounding engine: semi-naive vs rescan-everything.

Grounding is TeCoRe's scalability bottleneck (the paper's nRockIt-vs-PSL
discussion is about everything *after* the shared grounding front-end).  This
benchmark pins the speedup of the indexed semi-naive engine over the naive
reference engine on the scalability workload — FootballDB plus the sports
pack, extended with team locations (so rule f2 fires) and a thin geographic
rule chain that forces multi-round forward chaining, the regime where the
naive engine re-joins the whole graph every round.

Two guarantees are asserted, not just reported:

* the two engines produce identical ground programs (canonical signatures);
* the indexed engine grounds the workload at least ``MIN_SPEEDUP`` (3×)
  faster than the naive engine.

A second section measures the batched serving shape:
``TeCoRe.resolve_batch`` over many graphs versus one-shot ``resolve`` calls.
"""

import time

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.datasets.footballdb import TEAM_NAMES
from repro.logic import (
    IndexedGrounder,
    NaiveGrounder,
    RuleBuilder,
    quad,
    sports_pack,
)

#: The acceptance floor for the indexed engine on the scalability workload.
MIN_SPEEDUP = 3.0

#: FootballDB scale of the headline workload (≈2.9k facts at 50% noise).
SCALE = 0.1

#: Thin multi-round rule chain over the team-location facts: each link fires
#: on only ~32 facts, but forces the naive engine into another full re-join.
CHAIN_PREDICATES = (
    "locatedIn",
    "inCity",
    "inMetroArea",
    "inRegion",
    "inState",
    "inCountry",
    "inContinent",
)

MAX_ROUNDS = 10
REPEATS = 3


def chained_workload(scale: float):
    """FootballDB + sports pack + locations + geographic chain rules."""
    dataset = generate_footballdb(FootballDBConfig(scale=scale, noise_ratio=0.5, seed=2017))
    graph = dataset.graph.copy(name=f"footballdb-chained-{scale}")
    for team in TEAM_NAMES:
        graph.add((team, "locatedIn", f"{team}City", (1940, 2020), 0.95))
    pack = sports_pack()
    chain_rules = [
        RuleBuilder(f"geo{index}")
        .body(quad("y", source, "z", "t"))
        .head(quad("y", target, "z", "t"))
        .weight(1.2)
        .build()
        for index, (source, target) in enumerate(zip(CHAIN_PREDICATES, CHAIN_PREDICATES[1:]))
    ]
    return graph, list(pack.rules) + chain_rules, list(pack.constraints)


def time_grounding(engine_class, graph, rules, constraints, repeats=REPEATS):
    """Best-of-N wall-clock grounding time plus the last result."""
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = engine_class(
            graph, rules=rules, constraints=constraints, max_rounds=MAX_ROUNDS
        ).ground()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def engine_sweep():
    """Measure both engines across FootballDB scales (once per session)."""
    series = {}
    for scale in (0.02, 0.05, SCALE):
        graph, rules, constraints = chained_workload(scale)
        naive_seconds, naive_result = time_grounding(NaiveGrounder, graph, rules, constraints)
        indexed_seconds, indexed_result = time_grounding(IndexedGrounder, graph, rules, constraints)
        assert (
            naive_result.program.canonical_signature()
            == indexed_result.program.canonical_signature()
        ), f"engines disagree at scale {scale}"
        series[scale] = {
            "facts": len(graph),
            "rounds": indexed_result.rounds,
            "atoms": indexed_result.program.num_atoms,
            "clauses": indexed_result.program.num_clauses,
            "naive_ms": naive_seconds * 1000.0,
            "indexed_ms": indexed_seconds * 1000.0,
        }
    return series


def test_indexed_engine_speedup(benchmark, engine_sweep):
    """The tentpole claim: ≥3× on the scalability workload, same program."""
    graph, rules, constraints = chained_workload(SCALE)

    def ground_indexed():
        return IndexedGrounder(
            graph, rules=rules, constraints=constraints, max_rounds=MAX_ROUNDS
        ).ground()

    result = benchmark(ground_indexed)
    assert result.rounds >= len(CHAIN_PREDICATES) - 2

    entry = engine_sweep[SCALE]
    speedup = entry["naive_ms"] / entry["indexed_ms"]
    assert speedup >= MIN_SPEEDUP, (
        f"indexed grounder only {speedup:.2f}x faster than naive "
        f"({entry['indexed_ms']:.0f} ms vs {entry['naive_ms']:.0f} ms)"
    )

    rows = []
    for scale, data in sorted(engine_sweep.items()):
        rows.append(
            [
                scale,
                data["facts"],
                data["rounds"],
                data["atoms"],
                data["clauses"],
                f"{data['naive_ms']:.1f}",
                f"{data['indexed_ms']:.1f}",
                f"{data['naive_ms'] / data['indexed_ms']:.2f}x",
            ]
        )
    lines = format_rows(
        rows,
        ["scale", "facts", "rounds", "atoms", "clauses", "naive ms", "indexed ms", "speedup"],
    )
    lines.append("")
    lines.append(
        "Identical ground programs verified per scale (canonical signatures). "
        "The indexed engine joins each round only against the delta of newly "
        "derived facts via the graph's insertion-tick indexes; the naive "
        "engine re-joins the whole working graph every round."
    )
    record_report("A8", "indexed vs naive grounding engine", lines)
    write_bench_json(
        "grounding_engine",
        workload={
            "dataset": "footballdb-chained",
            "scale": SCALE,
            "noise_ratio": 0.5,
            "seed": 2017,
            "facts": entry["facts"],
            "max_rounds": MAX_ROUNDS,
            "chain_length": len(CHAIN_PREDICATES) - 1,
        },
        timings={
            "naive_seconds": entry["naive_ms"] / 1000.0,
            "indexed_seconds": entry["indexed_ms"] / 1000.0,
        },
        speedup=speedup,
        stats={
            "rounds": entry["rounds"],
            "atoms": entry["atoms"],
            "clauses": entry["clauses"],
            "scales_measured": sorted(engine_sweep),
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)


def test_batched_resolution_throughput(benchmark):
    """resolve_batch reuses translator + solver across many graphs."""
    graphs = []
    for seed in range(12):
        dataset = generate_footballdb(FootballDBConfig(scale=0.005, noise_ratio=0.5, seed=seed))
        graphs.append(dataset.graph.copy(name=f"tenant-{seed}"))
    pack = sports_pack()
    system = TeCoRe(rules=list(pack.rules), constraints=list(pack.constraints), solver="npsl")

    one_shot_started = time.perf_counter()
    singles = [system.resolve(graph) for graph in graphs]
    one_shot_seconds = time.perf_counter() - one_shot_started

    batch = benchmark(system.resolve_batch, graphs)

    assert len(batch) == len(graphs)
    for single, batched in zip(singles, batch):
        assert single.solution.assignment == batched.solution.assignment

    lines = [
        f"graphs                    : {len(graphs)}",
        f"one-shot resolve() total  : {one_shot_seconds * 1000:.1f} ms",
        f"resolve_batch() total     : {batch.runtime_seconds * 1000:.1f} ms",
        f"batch throughput          : {batch.graphs_per_second:.1f} graphs/s",
        f"total facts / removed     : {batch.total_input_facts} / {batch.total_removed_facts}",
        "",
        "resolve_batch shares one translator (cached expressivity probe) and "
        "one solver back-end across all graphs — the heavy-traffic serving "
        "shape; results are assignment-identical to one-shot resolve calls.",
    ]
    record_report("A8b", "batched resolution throughput (resolve_batch)", lines)
    benchmark.extra_info["graphs_per_second"] = round(batch.graphs_per_second, 1)
