"""A1 — scalability sweep: expressiveness vs scalability.

The demo's discussion goal (i): "inference expressiveness and scalability
(i.e., nRockIt versus PSL)".  We sweep the FootballDB size and measure, for
each reasoner family, the pure MAP-solving time over the shared ground
program.  The report records the full series so the growth trends can be
compared; the pytest-benchmark timing covers the largest size.
"""

import time

import pytest

from conftest import format_rows, record_report
from repro.core import make_solver
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import Grounder, sports_pack

#: FootballDB scales swept (≈ facts: 290, 580, 1.4k, 2.9k).
SCALES = [0.01, 0.02, 0.05, 0.1]
SOLVERS = ["nrockit", "npsl"]

_SERIES: dict[float, dict[str, float]] = {}


def _workload(scale: float):
    dataset = generate_footballdb(FootballDBConfig(scale=scale, noise_ratio=0.5, seed=2017))
    pack = sports_pack()
    grounder = Grounder(dataset.graph, rules=pack.rules, constraints=pack.constraints)
    return dataset, grounder.ground().program


@pytest.fixture(scope="module")
def sweep_series():
    """Measure solver-only runtime over the whole size sweep (once)."""
    for scale in SCALES:
        dataset, program = _workload(scale)
        entry: dict[str, float] = {
            "facts": len(dataset.graph),
            "clauses": program.num_clauses,
        }
        for solver_name in SOLVERS:
            solver = make_solver(solver_name)
            started = time.perf_counter()
            solution = solver.solve(program)
            entry[solver_name] = (time.perf_counter() - started) * 1000.0
            entry[f"{solver_name}_objective"] = solution.objective
        _SERIES[scale] = entry
    return _SERIES


@pytest.mark.parametrize("solver_name", SOLVERS)
def test_scalability_largest_size(benchmark, sweep_series, solver_name):
    _, program = _workload(SCALES[-1])
    solver = make_solver(solver_name)
    solution = benchmark(solver.solve, program)
    assert program.is_feasible(solution.assignment)

    if solver_name == SOLVERS[-1]:
        rows = []
        for scale in SCALES:
            entry = sweep_series[scale]
            rows.append(
                [
                    scale,
                    int(entry["facts"]),
                    int(entry["clauses"]),
                    f"{entry['nrockit']:.1f}",
                    f"{entry['npsl']:.1f}",
                    f"{entry['nrockit'] / entry['npsl']:.2f}x",
                ]
            )
        lines = format_rows(
            rows,
            ["scale", "facts", "ground clauses", "nrockit ms", "npsl ms", "ratio"],
        )
        lines.append("")
        lines.append(
            "Both reasoners share the grounding front-end; times are pure MAP solving. "
            "The PSL path scales linearly in the number of hinge potentials, the ILP "
            "path depends on the LP/branch-and-cut behaviour of HiGHS."
        )
        record_report("A1", "scalability sweep: nRockIt vs nPSL MAP runtime", lines)
