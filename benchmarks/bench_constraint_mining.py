"""A4 — mined vs hand-written constraints (extension).

The demo's discussion goals include the "automatic derivation or suggestion of
constraints and inference rules".  This ablation mines constraints from a
*clean* FootballDB sample, then debugs an independently generated *noisy*
FootballDB with (a) the hand-written sports pack and (b) the mined
constraints, comparing repair quality.  Expected shape: the mined set recovers
most of the hand-written set's quality without any manual authoring.
"""

import pytest

from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import sports_pack
from repro.logic.mining import ConstraintMiner
from repro.metrics import repair_quality

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def noisy_target():
    return generate_footballdb(FootballDBConfig(scale=0.05, noise_ratio=0.5, seed=555))


@pytest.fixture(scope="module")
def mined_constraints():
    clean = generate_footballdb(FootballDBConfig(scale=0.05, noise_ratio=0.0, seed=554))
    miner = ConstraintMiner(min_support=30, hard_threshold=0.97, soft_threshold=0.8)
    suggestions = miner.suggest(clean.graph)
    return [s.constraint for s in suggestions if s.constraint is not None]


def _record(name: str, removed_facts, constraint_count: int, dataset) -> None:
    quality = repair_quality(removed_facts, dataset.noise_facts)
    _RESULTS[name] = {
        "constraints": constraint_count,
        "removed": len(removed_facts),
        "precision": quality.precision,
        "recall": quality.recall,
        "f1": quality.f1,
    }
    if len(_RESULTS) == 2:
        rows = [
            [
                name,
                int(_RESULTS[name]["constraints"]),
                int(_RESULTS[name]["removed"]),
                f"{_RESULTS[name]['precision']:.3f}",
                f"{_RESULTS[name]['recall']:.3f}",
                f"{_RESULTS[name]['f1']:.3f}",
            ]
            for name in sorted(_RESULTS)
        ]
        lines = format_rows(
            rows, ["constraint set", "constraints", "removed", "precision", "recall", "F1"]
        )
        lines.append("")
        lines.append(
            "Constraints are mined from an independent clean FootballDB sample "
            "(functional-over-time + precedence patterns) and applied to unseen noisy data."
        )
        record_report("A4", "hand-written vs automatically mined constraints", lines)


def test_handwritten_constraints(benchmark, noisy_target):
    pack = sports_pack()
    system = TeCoRe(rules=[], constraints=list(pack.constraints), solver="nrockit")
    result = benchmark(system.resolve, noisy_target.graph)
    _record("hand-written (sports pack)", result.removed_facts, len(pack.constraints), noisy_target)
    quality = repair_quality(result.removed_facts, noisy_target.noise_facts)
    assert quality.f1 > 0.75


def test_mined_constraints(benchmark, noisy_target, mined_constraints):
    assert mined_constraints, "mining the clean sample must produce constraints"
    system = TeCoRe(rules=[], constraints=mined_constraints, solver="nrockit")
    result = benchmark(system.resolve, noisy_target.graph)
    _record("mined (ConstraintMiner)", result.removed_facts, len(mined_constraints), noisy_target)
    quality = repair_quality(result.removed_facts, noisy_target.noise_facts)
    handwritten = _RESULTS.get("hand-written (sports pack)")
    assert quality.f1 > 0.6
    if handwritten is not None:
        assert quality.f1 >= handwritten["f1"] - 0.25
