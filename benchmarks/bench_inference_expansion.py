"""E2 — temporal inference expansion (Figure 4 rules deriving new facts).

Rules f1–f3 expand the KG: f1 derives worksFor from playsFor, f2 derives
livesIn from worksFor ∧ locatedIn with the intersected validity interval
(``t'' = t ∩ t'``), f3 tags teen players.  The benchmark times rule chaining
on the extended running example and checks the derived facts and their
intervals.
"""

from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import ranieri_extended_graph


def test_rule_expansion(benchmark):
    graph = ranieri_extended_graph()
    system = TeCoRe.from_pack("running-example", solver="nrockit")

    expanded = benchmark(system.expand, graph)

    derived = expanded.difference(graph)
    derived_by_predicate = {}
    for fact in derived:
        derived_by_predicate.setdefault(str(fact.predicate), []).append(fact)

    # f1 fires on the playsFor fact; f2 chains on f1's output (two rounds).
    assert "worksFor" in derived_by_predicate
    assert "livesIn" in derived_by_predicate
    lives_in = derived_by_predicate["livesIn"][0]
    assert lives_in.interval.start == 1984 and lives_in.interval.end == 1986

    rows = [
        [predicate, len(facts), "; ".join(str(fact) for fact in facts[:2])]
        for predicate, facts in sorted(derived_by_predicate.items())
    ]
    lines = format_rows(rows, ["derived predicate", "facts", "examples"])
    lines.append("")
    lines.append(
        "f2's livesIn interval equals the intersection of the worksFor and "
        "locatedIn intervals, as in Figure 4."
    )
    record_report("E2", "rule expansion on the extended running example", lines)
    benchmark.extra_info["derived_facts"] = len(derived)
