"""E1 — the running example (Figures 1, 4, 6 → Figure 7).

The paper's walk-through: given the five-fact Ranieri UTKG, rules f1–f3 and
constraints c1–c3, MAP inference removes fact (5), the Napoli coaching spell,
because of constraint c2, and keeps facts (1)–(4).  Both reasoner families
must reproduce that repair; the benchmark times the full resolve pipeline.
"""

import pytest

from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import RANIERI_FACTS

SOLVERS = ("nrockit", "npsl")


@pytest.mark.parametrize("solver", SOLVERS)
def test_running_example_repair(benchmark, ranieri, solver):
    system = TeCoRe.from_pack("running-example", solver=solver)
    result = benchmark(system.resolve, ranieri)

    removed_objects = {str(fact.object) for fact in result.removed_facts}
    assert removed_objects == {"Napoli"}, "Figure 7: only fact (5) is removed"
    assert result.statistics.consistent_facts == 4
    assert result.statistics.violations == 1
    assert result.violations_by_constraint() == {"c2": 1}

    rows = []
    for index, raw in enumerate(RANIERI_FACTS, start=1):
        kept = str(raw[2]) not in removed_objects
        rows.append(
            [
                f"({index})",
                f"({raw[0]}, {raw[1]}, {raw[2]}, [{raw[3][0]},{raw[3][1]}])",
                f"{raw[4]:.1f}",
                "kept" if kept else "removed (c2)",
                "kept" if index <= 4 else "removed",
            ]
        )
    lines = format_rows(
        rows, ["fact", "statement", "conf", f"measured ({solver})", "paper (Fig. 7)"]
    )
    lines.append("")
    lines.append(
        f"runtime {result.statistics.runtime_seconds * 1000:.1f} ms, "
        f"MAP objective {result.statistics.objective:.3f}, "
        f"{result.statistics.inferred_facts} fact(s) inferred (f1: worksFor)"
    )
    record_report(f"E1-{solver}", f"running example repair with {solver}", lines)

    benchmark.extra_info["removed"] = sorted(removed_objects)
    benchmark.extra_info["objective"] = result.statistics.objective
