"""E3 — conflict-detection statistics (Figure 8).

The paper reports using TeCoRe "to compute the number of conflicting facts
(19,734) from a utkg containing 243,157 temporal facts" — a conflict rate of
about 8.1%.  We regenerate that panel on a synthetic UTKG 1/50th of the size
whose planted noise reproduces the same conflict rate, and check that the
measured fraction of conflicting facts lands in the same band.
"""

import pytest

from conftest import format_rows, record_report
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.logic import find_conflicts, sports_pack

#: The Figure 8 numbers.
PAPER_TOTAL_FACTS = 243_157
PAPER_CONFLICTING_FACTS = 19_734
PAPER_CONFLICT_RATE = PAPER_CONFLICTING_FACTS / PAPER_TOTAL_FACTS  # ≈ 0.081

#: Scale factor of the reproduction workload (1/50th of the paper's UTKG).
SCALE_DIVISOR = 50


@pytest.fixture(scope="module")
def statistics_workload():
    """A UTKG whose planted noise yields roughly the paper's conflict rate."""
    target_facts = PAPER_TOTAL_FACTS // SCALE_DIVISOR
    # Empirically a ~5.5% noise ratio yields ≈8% of facts in conflict (each
    # erroneous fact typically clashes with at least one correct fact).
    players = int(target_facts / 3.1)
    return generate_footballdb(FootballDBConfig(players=players, noise_ratio=0.055, seed=1734))


def test_conflict_statistics_panel(benchmark, statistics_workload):
    constraints = sports_pack().constraints

    violations = benchmark(find_conflicts, statistics_workload.graph, constraints)

    total_facts = len(statistics_workload.graph)
    conflicting = {fact.statement_key for violation in violations for fact in violation.facts}
    measured_rate = len(conflicting) / total_facts

    # Shape check: the measured conflict rate is in the same band as Figure 8.
    assert 0.5 * PAPER_CONFLICT_RATE <= measured_rate <= 2.0 * PAPER_CONFLICT_RATE

    rows = [
        [
            "paper (Figure 8)",
            f"{PAPER_TOTAL_FACTS:,}",
            f"{PAPER_CONFLICTING_FACTS:,}",
            f"{PAPER_CONFLICT_RATE * 100:.1f}%",
        ],
        [
            f"measured (1/{SCALE_DIVISOR} scale)",
            f"{total_facts:,}",
            f"{len(conflicting):,}",
            f"{measured_rate * 100:.1f}%",
        ],
    ]
    lines = format_rows(rows, ["setting", "temporal facts", "conflicting facts", "conflict rate"])
    lines.append("")
    lines.append(
        f"{len(violations):,} grounded constraint violations across "
        f"{len(constraints)} constraints"
    )
    record_report("E3", "conflict statistics panel (Figure 8)", lines)

    benchmark.extra_info["total_facts"] = total_facts
    benchmark.extra_info["conflicting_facts"] = len(conflicting)
    benchmark.extra_info["conflict_rate"] = measured_rate
