"""A11 — concurrent serving: micro-batched `tecore serve` vs per-request loop.

The serving tier's headline claim: under concurrent hot-key traffic (many
clients asking for resolution of a small set of tenant UTKGs — the demo's
"many debuggers, few graphs" shape), the micro-batched HTTP service clears
the same request stream at least ``MIN_SPEEDUP`` (2×) faster than a
sequential per-request resolve loop, while staying **bit-identical**: every
served ``/resolve`` payload equals the direct ``TeCoRe.resolve`` payload for
its graph, and every session response equals the corresponding direct
:class:`~repro.core.session.ResolutionSession` result (wall-clock timing
fields excluded — see ``repro.serve.protocol.stable_view``).

Where the speedup comes from: the flush worker serves every batch through
one shared translator+solver; content-identical in-flight graphs are
*coalesced* onto a single solve (collapsed forwarding); and the content-
keyed response cache extends that across batch windows — so a stream of
``REQUESTS`` hot-key requests over ``TENANTS`` distinct graphs pays for
roughly ``TENANTS`` resolutions instead of ``REQUESTS``.

Results go to ``results/A11.txt`` (human-readable) and
``results/BENCH_serve.json`` (machine-readable trajectory record).
"""

import http.client
import json
import threading
import time

import pytest

from _report import write_bench_json
from conftest import format_rows, record_report
from repro import TeCoRe
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.kg.io import json_io
from repro.logic import sports_pack
from repro.serve import ServerConfig, encode_result, make_server, stable_view
from repro.serve.protocol import decode_edits, decode_graph
from repro.verify import (
    HistoryRecorder,
    SerializabilityChecker,
    SessionDirectory,
    WorkloadConfig,
    generate_trace,
    request_with_retry,
)

#: Acceptance floor for micro-batched serving vs the per-request loop.
MIN_SPEEDUP = 2.0

#: FootballDB workload (same family as the incremental benchmark).
SCALE = 0.01
NOISE = 0.5
SEED = 2017

#: Traffic shape: hot-key fan-out over a few tenant graphs.
TENANTS = 4
REQUESTS = 96
CLIENTS = 16

SOLVER = "nrockit"

#: Micro-batching knobs under test.
MAX_BATCH = 16
BATCH_DELAY = 0.02

#: Trace-driven mode (Zipf hot keys + bursts over HTTP, see repro.verify).
#: Unlike the pure-resolve stream above, the trace mixes session traffic in,
#: which is a *common* cost on both sides — so the acceptance floor is lower.
TRACE_CLIENTS = 8
TRACE_OPS_PER_CLIENT = 12
TRACE_SESSIONS = 2
TRACE_RESOLVE_VARIANTS = 3
TRACE_MIN_SPEEDUP = 1.25


@pytest.fixture(scope="module")
def workload():
    dataset = generate_footballdb(FootballDBConfig(scale=SCALE, noise_ratio=NOISE, seed=SEED))
    pack = sports_pack()
    base = dataset.graph
    # Tenant variants: distinct graph content per tenant (each drops a
    # different slice of the evidence), duplicated across the request stream.
    tenants = []
    facts = base.facts()
    for tenant in range(TENANTS):
        graph = base.copy(name=f"tenant-{tenant}")
        for fact in facts[tenant * 3 : tenant * 3 + 3]:
            graph.remove(fact)
        tenants.append(graph)
    requests = [tenants[index % TENANTS] for index in range(REQUESTS)]
    return list(pack.rules), list(pack.constraints), tenants, requests


def post_json(address, path, payload, timeout=120.0):
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get_json(address, path, timeout=30.0):
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_microbatched_serving_speedup(benchmark, workload):
    """The tentpole claim: ≥2× vs the sequential loop, bit-identical payloads."""
    rules, constraints, tenants, requests = workload
    system = TeCoRe(rules=rules, constraints=constraints, solver=SOLVER)

    # Reference payloads: one direct resolve per tenant (the ground truth
    # every served response must match bit-for-bit).
    expected = {graph.name: stable_view(encode_result(system.resolve(graph))) for graph in tenants}

    # Baseline: a sequential per-request resolve loop (one fresh resolve per
    # incoming request — per-request serving without batching).
    started = time.perf_counter()
    for graph in requests:
        system.resolve(graph)
    sequential_seconds = time.perf_counter() - started

    # Micro-batched service: CLIENTS concurrent clients drain the same
    # request stream through POST /resolve.
    server = make_server(
        system,
        ServerConfig(
            port=0,
            max_batch=MAX_BATCH,
            batch_delay=BATCH_DELAY,
            queue_limit=REQUESTS,
        ),
    )
    server.run_in_thread()
    try:
        address = server.server_address[:2]
        documents = [{"graph": json_io.to_dict(graph)} for graph in requests]
        outcomes = [None] * len(requests)
        cursor = iter(range(len(requests)))
        cursor_lock = threading.Lock()

        def client():
            # One keep-alive connection per client, like a real traffic source.
            connection = http.client.HTTPConnection(*address, timeout=120.0)
            try:
                while True:
                    with cursor_lock:
                        index = next(cursor, None)
                    if index is None:
                        return
                    connection.request(
                        "POST",
                        "/resolve",
                        body=json.dumps(documents[index]),
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read())
                    outcomes[index] = (response.status, stable_view(payload))
            finally:
                connection.close()

        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served_seconds = time.perf_counter() - started

        for graph, outcome in zip(requests, outcomes):
            assert outcome is not None
            status, payload = outcome
            assert status == 200
            assert payload == expected[graph.name], (
                f"served response for {graph.name} diverged from direct resolve"
            )

        _, stats = get_json(address, "/stats")
        batcher = stats["batcher"]
        assert batcher["requests"] == REQUESTS
        assert batcher["coalesced"] + batcher["response_cache_hits"] > 0, (
            "hot-key traffic neither coalesced nor served from the response cache"
        )
        assert batcher["resolves"] < REQUESTS

        # Session serving parity: a served session must track a direct one.
        session_graph = tenants[0]
        direct = system.session(session_graph)
        status, created = post_json(address, "/sessions", {"graph": json_io.to_dict(session_graph)})
        assert status == 201
        assert stable_view(created["result"]) == stable_view(encode_result(direct.result))
        edits = [json_io.fact_to_dict(fact) for fact in session_graph.facts()[:2]]
        status, edited = post_json(
            address,
            "/sessions/" + created["session_id"] + "/edits",
            {"removes": edits},
        )
        assert status == 200
        direct_result = direct.apply(removes=[session_graph.facts()[0], session_graph.facts()[1]])
        assert stable_view(edited["result"]) == stable_view(encode_result(direct_result))
        resolve_p99 = stats["endpoints"]["POST /resolve"]["p99_ms"]
    finally:
        server.close()

    speedup = sequential_seconds / served_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched serving only {speedup:.2f}x faster than the sequential "
        f"loop ({served_seconds * 1000:.0f} ms vs {sequential_seconds * 1000:.0f} ms)"
    )

    # One representative request for the pytest-benchmark table.
    server = make_server(system, ServerConfig(port=0))
    server.run_in_thread()
    try:
        address = server.server_address[:2]
        benchmark.pedantic(
            lambda: post_json(address, "/resolve", documents[0]),
            rounds=1,
            iterations=1,
        )
    finally:
        server.close()

    rows = [
        [
            "sequential per-request loop",
            f"{sequential_seconds * 1000:.0f}",
            f"{REQUESTS / sequential_seconds:.1f}",
            "1.0x",
        ],
        [
            f"micro-batched serve ({CLIENTS} clients)",
            f"{served_seconds * 1000:.0f}",
            f"{REQUESTS / served_seconds:.1f}",
            f"{speedup:.1f}x",
        ],
    ]
    lines = format_rows(rows, ["server", f"{REQUESTS} requests (ms)", "req/s", "speedup"])
    lines += [
        "",
        f"workload: {TENANTS} tenant graphs x {REQUESTS // TENANTS} requests each "
        f"({len(tenants[0])} facts per graph, FootballDB scale={SCALE} noise={NOISE})",
        f"batching: flush at {MAX_BATCH} or {BATCH_DELAY * 1000:.0f} ms; "
        f"{batcher['batches']} batches, mean size {batcher['mean_batch_size']}, "
        f"{batcher['coalesced']} requests coalesced, "
        f"{batcher['response_cache_hits']} response-cache hits, "
        f"{batcher['resolves']} solves",
        f"POST /resolve p99: {resolve_p99:.1f} ms",
        "",
        "Every served payload (one-shot and session) is bit-identical to the",
        "direct TeCoRe.resolve / ResolutionSession result for its graph,",
        "modulo wall-clock timing fields.",
    ]
    record_report(
        "A11",
        "micro-batched concurrent serving vs per-request loop (FootballDB tenants)",
        lines,
    )

    write_bench_json(
        "serve",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": NOISE,
            "seed": SEED,
            "tenants": TENANTS,
            "requests": REQUESTS,
            "clients": CLIENTS,
            "solver": SOLVER,
            "max_batch": MAX_BATCH,
            "batch_delay": BATCH_DELAY,
        },
        timings={
            "sequential_seconds": sequential_seconds,
            "served_seconds": served_seconds,
        },
        speedup=speedup,
        stats={
            "batches": batcher["batches"],
            "mean_batch_size": batcher["mean_batch_size"],
            "coalesced_requests": batcher["coalesced"],
            "response_cache_hits": batcher["response_cache_hits"],
            "solves": batcher["resolves"],
            "resolve_p99_ms": resolve_p99,
        },
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["mean_batch_size"] = batcher["mean_batch_size"]


# --------------------------------------------------------------------------- #
# Trace-driven mode: recorded Zipf/burst traffic with a correctness certificate
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def trace_setup():
    """A seeded multi-client trace (see repro.verify.workloads) over FootballDB."""
    dataset = generate_footballdb(FootballDBConfig(scale=SCALE, noise_ratio=NOISE, seed=SEED))
    pack = sports_pack()
    config = WorkloadConfig(
        seed=SEED,
        clients=TRACE_CLIENTS,
        ops_per_client=TRACE_OPS_PER_CLIENT,
        sessions=TRACE_SESSIONS,
        zipf_alpha=1.5,
        resolve_ratio=0.85,
        read_ratio=0.6,
        resolve_variants=TRACE_RESOLVE_VARIANTS,
        resolve_span=(0.8, 1.0),
        noise="mixed",
        malformed_ratio=0.0,
        burst_size=4,
        burst_gap=0.002,
    )
    trace = generate_trace(dataset.graph, config)
    return list(pack.rules), list(pack.constraints), trace


class _HttpTraceClient(threading.Thread):
    """One trace client over a keep-alive HTTP connection.

    Responded 503/504s (backpressure, deadline expiry) are retried with
    capped exponential backoff honouring the server's ``Retry-After``
    hint — the shared policy of ``repro.verify.chaos`` — instead of being
    treated as terminal; retry counts surface in the benchmark record.
    """

    def __init__(self, client_id, program, address, directory, barrier):
        super().__init__(name=f"http-trace-{client_id}", daemon=True)
        self.client_id = client_id
        self.program = program
        self.address = address
        self.directory = directory
        self.barrier = barrier
        self.retries = 0
        self.error = None

    def run(self):
        try:
            connection = http.client.HTTPConnection(*self.address, timeout=120.0)
            try:
                self.barrier.wait()
                for op in self.program:
                    if op.delay > 0:
                        time.sleep(op.delay)
                    self._issue(connection, op)
            finally:
                connection.close()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            self.error = exc

    def _request(self, connection, method, path, document=None):
        status, payload, retries = request_with_retry(connection, method, path, document)
        self.retries += retries
        return status, payload

    def _issue(self, connection, op):
        if op.kind == "resolve":
            body = op.body or {}
            if op.include_graphs:
                body = {"graph": body, "include_graphs": True}
            self._request(connection, "POST", "/resolve", body)
        elif op.kind == "session_create":
            status, payload = self._request(connection, "POST", "/sessions", op.body)
            self.directory.publish(op.session, payload.get("session_id") if status == 201 else None)
        else:
            sid = self.directory.resolve(op.session)
            if op.kind == "session_edit":
                self._request(connection, "POST", f"/sessions/{sid}/edits", op.body)
            elif op.kind == "session_read":
                query = "?include_graphs=1" if op.include_graphs else ""
                self._request(connection, "GET", f"/sessions/{sid}/result{query}")
            else:
                self._request(connection, "DELETE", f"/sessions/{sid}")


def test_trace_driven_serving(trace_setup):
    """Trace mode: Zipf hot keys + bursts over HTTP, checked serializable.

    Two claims at once: the service drains realistic skewed traffic at least
    ``TRACE_MIN_SPEEDUP`` faster than a per-request direct loop, and the
    *recorded* execution passes black-box serializability checking — the
    throughput number comes with a correctness certificate.
    """
    rules, constraints, trace = trace_setup
    system = TeCoRe(rules=rules, constraints=constraints, solver=SOLVER)

    # Sequential baseline: one direct library call per trace op (pre-decoded
    # so both sides pay for compute, not JSON parsing).
    resolve_graphs = []
    creates = {}
    edit_stream = []
    for program in trace.programs:
        for op in program:
            if op.kind == "resolve":
                resolve_graphs.append(decode_graph(op.body))
            elif op.kind == "session_create":
                creates[op.session] = decode_graph(op.body)
            elif op.kind == "session_edit":
                edit_stream.append((op.session, *decode_edits(op.body)))

    started = time.perf_counter()
    for graph in resolve_graphs:
        system.resolve(graph)
    direct_sessions = {index: system.session(graph) for index, graph in creates.items()}
    for session_index, adds, removes in edit_stream:
        direct_sessions[session_index].apply(adds=adds, removes=removes)
    sequential_seconds = time.perf_counter() - started

    # Served: every trace client drives its program over HTTP against an
    # instrumented server; the recorder observes the client-visible history.
    recorder = HistoryRecorder()
    server = make_server(
        system,
        ServerConfig(
            port=0,
            max_batch=MAX_BATCH,
            batch_delay=BATCH_DELAY,
            queue_limit=256,
            max_sessions=TRACE_SESSIONS + 4,
        ),
        recorder=recorder,
    )
    server.run_in_thread()
    try:
        address = server.server_address[:2]
        directory = SessionDirectory(trace.config.sessions)
        barrier = threading.Barrier(len(trace.programs))
        clients = [
            _HttpTraceClient(client_id, program, address, directory, barrier)
            for client_id, program in enumerate(trace.programs)
        ]
        started = time.perf_counter()
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        served_seconds = time.perf_counter() - started
        for client in clients:
            assert client.error is None, f"trace client {client.client_id} failed: {client.error}"
        _, stats = get_json(address, "/stats")
        batcher = stats["batcher"]
    finally:
        server.close()

    total_retries = sum(client.retries for client in clients)
    history = recorder.history({"workload": "bench trace", "seed": SEED, "transport": "http"})
    # Every retried attempt is its own server-recorded operation.
    assert len(history) == trace.total_ops + total_retries
    report = SerializabilityChecker(system).check(history)
    assert report.ok, f"trace run is not serializable: {report.summary()}"

    speedup = sequential_seconds / served_seconds
    assert speedup >= TRACE_MIN_SPEEDUP, (
        f"trace-driven serving only {speedup:.2f}x faster than the direct "
        f"per-request loop ({served_seconds * 1000:.0f} ms vs "
        f"{sequential_seconds * 1000:.0f} ms)"
    )

    shared_solves = batcher["coalesced"] + batcher["response_cache_hits"]
    rows = [
        [
            "direct per-request loop",
            f"{sequential_seconds * 1000:.0f}",
            f"{trace.total_ops / sequential_seconds:.1f}",
            "1.0x",
        ],
        [
            f"trace-driven serve ({TRACE_CLIENTS} clients)",
            f"{served_seconds * 1000:.0f}",
            f"{trace.total_ops / served_seconds:.1f}",
            f"{speedup:.1f}x",
        ],
    ]
    lines = format_rows(
        rows, ["execution", f"{trace.total_ops} trace ops (ms)", "ops/s", "speedup"]
    )
    lines += [
        "",
        f"trace: {TRACE_CLIENTS} clients x {TRACE_OPS_PER_CLIENT} ops, "
        f"{TRACE_SESSIONS} sessions, {TRACE_RESOLVE_VARIANTS} resolve variants, "
        f"zipf_alpha=1.5, bursts of 4 (seed {SEED})",
        f"serving decisions: {batcher['batches']} batches, "
        f"{batcher['coalesced']} coalesced, "
        f"{batcher['response_cache_hits']} response-cache hits, "
        f"{batcher['resolves']} solves, {total_retries} client retries",
        f"serializability: {report.summary()}",
    ]
    record_report(
        "A11b",
        "trace-driven serving under hot-key skew, with serializability certificate",
        lines,
    )

    write_bench_json(
        "serve_trace",
        workload={
            "dataset": "footballdb",
            "scale": SCALE,
            "noise_ratio": NOISE,
            "seed": SEED,
            "clients": TRACE_CLIENTS,
            "ops_per_client": TRACE_OPS_PER_CLIENT,
            "sessions": TRACE_SESSIONS,
            "resolve_variants": TRACE_RESOLVE_VARIANTS,
            "resolve_span": [0.8, 1.0],
            "zipf_alpha": 1.5,
            "solver": SOLVER,
            "transport": "http",
        },
        timings={
            "sequential_seconds": sequential_seconds,
            "served_seconds": served_seconds,
        },
        speedup=speedup,
        stats={
            "trace_ops": trace.total_ops,
            "batches": batcher["batches"],
            "coalesced_requests": batcher["coalesced"],
            "response_cache_hits": batcher["response_cache_hits"],
            "shared_solves": shared_solves,
            "solves": batcher["resolves"],
            "retries": total_retries,
            "checker_search_steps": report.stats["search_steps"],
            "checker_violations": 0,
        },
    )
