"""E4 — "Performance of MAP Inference": nRockIt vs nPSL on FootballDB.

The paper reports, on the FootballDB UTKG and averaged over 10 runs,
12,181 ms for nRockIt and 6,129 ms for nPSL — PSL roughly 2× faster because
it solves a convex relaxation instead of an exact discrete program, at the
price of expressivity.

Here both back-ends consume the same ground program (grounding/translation is
shared and measured separately), so the comparison isolates pure MAP solving.
Absolute times differ from the paper (HiGHS replaces Gurobi, numpy replaces
the Java PSL engine); the report records both the measured ratio and the
paper's, and EXPERIMENTS.md discusses where the shape holds and where it
does not.
"""

import statistics
import time

import pytest

from conftest import format_rows, record_report
from repro.core import make_solver
from repro.logic import Grounder, sports_pack

#: The paper's reported runtimes (milliseconds, average of 10 runs).
PAPER_MS = {"nrockit": 12_181.0, "npsl": 6_129.0}

#: Number of measurement rounds (the paper averages over 10 runs).
ROUNDS = 10

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def footballdb_program(footballdb_noisy):
    """Ground the FootballDB workload once; both solvers consume the result."""
    pack = sports_pack()
    grounder = Grounder(footballdb_noisy.graph, rules=pack.rules, constraints=pack.constraints)
    return grounder.ground().program


@pytest.mark.parametrize("solver_name", ["nrockit", "npsl"])
def test_map_inference_runtime(benchmark, footballdb_program, solver_name, footballdb_noisy):
    solver = make_solver(solver_name)

    started = time.perf_counter()
    solution = benchmark.pedantic(
        solver.solve, args=(footballdb_program,), rounds=ROUNDS, iterations=1, warmup_rounds=1
    )
    wall_ms = (time.perf_counter() - started) * 1000.0

    removed = len(solution.removed_facts(footballdb_program))
    if benchmark.stats is not None and benchmark.stats.stats.data:
        mean_ms = statistics.mean(benchmark.stats.stats.data) * 1000.0
    else:  # --benchmark-disable (the CI smoke loop): one un-warmed run
        mean_ms = wall_ms
    _RESULTS[solver_name] = {
        "mean_ms": mean_ms,
        "objective": solution.objective,
        "removed": removed,
    }
    benchmark.extra_info["objective"] = solution.objective
    benchmark.extra_info["removed_facts"] = removed
    benchmark.extra_info["paper_ms"] = PAPER_MS[solver_name]

    assert footballdb_program.is_feasible(solution.assignment)

    if len(_RESULTS) == 2:
        _write_report(footballdb_program, footballdb_noisy)


def _write_report(program, dataset) -> None:
    measured_ratio = _RESULTS["nrockit"]["mean_ms"] / _RESULTS["npsl"]["mean_ms"]
    paper_ratio = PAPER_MS["nrockit"] / PAPER_MS["npsl"]
    rows = []
    for name in ("nrockit", "npsl"):
        rows.append(
            [
                name,
                f"{PAPER_MS[name]:,.0f}",
                f"{_RESULTS[name]['mean_ms']:.1f}",
                f"{_RESULTS[name]['objective']:.1f}",
                _RESULTS[name]["removed"],
            ]
        )
    lines = format_rows(
        rows, ["solver", "paper ms (avg 10)", "measured ms (avg 10)", "objective", "removed facts"]
    )
    lines.append("")
    lines.append(
        f"workload: {len(dataset.graph):,} facts -> {program.num_atoms:,} ground atoms, "
        f"{program.num_clauses:,} ground clauses"
    )
    lines.append(
        f"paper nRockIt/nPSL runtime ratio: {paper_ratio:.2f}x; measured: {measured_ratio:.2f}x "
        "(see EXPERIMENTS.md for the substitution discussion)"
    )
    record_report("E4", "MAP inference runtime, nRockIt vs nPSL (FootballDB)", lines)
