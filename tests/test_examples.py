"""Smoke tests for the runnable example scripts.

Each example is imported and executed with a tiny workload so the documented
entry points stay working; the heavier default parameters are exercised by the
benchmarks instead.
"""

import runpy
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, argv: list[str]) -> None:
    script = EXAMPLES_DIR / name
    assert script.exists(), script
    old_argv = sys.argv
    sys.argv = [str(script), *argv]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart.py", [])
        out = capsys.readouterr().out
        assert "Reproduced Figure 7" in out

    def test_footballdb_debugging_small_scale(self, capsys):
        _run_example("footballdb_debugging.py", ["0.005"])
        out = capsys.readouterr().out
        assert "precision" in out
        assert "static (no time)" in out

    def test_wikidata_inference_small_scale(self, capsys):
        _run_example("wikidata_inference.py", ["0.0002"])
        out = capsys.readouterr().out
        assert "Derived facts surviving each confidence threshold" in out

    def test_custom_constraints(self, capsys):
        _run_example("custom_constraints.py", [])
        out = capsys.readouterr().out
        assert "Editor-built constraints" in out
        assert "npsl" in out
