"""Unit tests for the MLN MAP back-ends (exact and approximate).

All back-ends are exercised on the same small programs so their answers can be
compared: the exact solvers must agree on the optimal objective, and the
approximate ones must produce feasible states that are not wildly worse.
"""

import pytest

from repro.errors import InfeasibleProgramError, SolverNotAvailableError
from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram, ground
from repro.mln import (
    BranchAndBoundSolver,
    CuttingPlaneSolver,
    ILPMapSolver,
    MaxWalkSATSolver,
    available_backends,
    make_solver,
    solve_map,
)

EXACT_BACKENDS = ["ilp", "cutting-plane", "branch-and-bound"]
ALL_BACKENDS = EXACT_BACKENDS + ["maxwalksat"]


def _conflict_program():
    """Three facts, two of which conflict (the stronger one should win)."""
    program = GroundProgram()
    strong = program.add_atom(make_fact("x", "coach", "A", (1, 5), 0.9), is_evidence=True)
    weak = program.add_atom(make_fact("x", "coach", "B", (2, 4), 0.6), is_evidence=True)
    free = program.add_atom(make_fact("x", "birthDate", 1950, (1950, 2000), 0.8), is_evidence=True)
    for atom in (strong, weak, free):
        program.add_clause([(atom.index, True)], atom.fact.log_weight, ClauseKind.EVIDENCE, "e")
    program.add_clause(
        [(strong.index, False), (weak.index, False)], None, ClauseKind.CONSTRAINT, "c2"
    )
    return program, strong, weak, free


def _infeasible_program():
    """A single certain fact that a hard constraint forbids on both branches."""
    program = GroundProgram()
    atom = program.add_atom(make_fact("x", "p", "A", (1, 5), 0.9), is_evidence=True)
    program.add_clause([(atom.index, True)], None, ClauseKind.CONSTRAINT, "must-be-true")
    program.add_clause([(atom.index, False)], None, ClauseKind.CONSTRAINT, "must-be-false")
    return program


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {
            "ilp",
            "cutting-plane",
            "branch-and-bound",
            "branch-and-bound-array",
            "maxwalksat",
            "maxwalksat-array",
        }

    def test_make_solver_unknown(self):
        with pytest.raises(SolverNotAvailableError):
            make_solver("gurobi")

    def test_make_solver_kwargs(self):
        solver = make_solver("maxwalksat", max_flips=10, seed=1)
        assert solver.max_flips == 10


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestAllBackendsOnConflict:
    def test_resolves_conflict_keeping_stronger_fact(self, backend):
        program, strong, weak, free = _conflict_program()
        solution = solve_map(program, backend=backend)
        assert solution.assignment[strong.index] is True
        assert solution.assignment[weak.index] is False
        assert solution.assignment[free.index] is True

    def test_solution_is_feasible(self, backend):
        program, *_ = _conflict_program()
        solution = solve_map(program, backend=backend)
        assert program.is_feasible(solution.assignment)

    def test_stats_populated(self, backend):
        program, *_ = _conflict_program()
        solution = solve_map(program, backend=backend)
        assert solution.stats.atoms == program.num_atoms
        assert solution.stats.clauses == program.num_clauses
        assert solution.stats.runtime_seconds >= 0.0


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
class TestExactBackends:
    def test_optimal_objective_agrees(self, backend, running_example_grounding):
        program = running_example_grounding.program
        reference = solve_map(program, backend="ilp").objective
        solution = solve_map(program, backend=backend)
        assert solution.objective == pytest.approx(reference, abs=1e-6)

    def test_running_example_removes_napoli(self, backend, running_example_grounding):
        program = running_example_grounding.program
        solution = solve_map(program, backend=backend)
        removed = {str(fact.object) for fact in solution.removed_facts(program)}
        assert removed == {"Napoli"}

    def test_infeasible_program_raises(self, backend):
        with pytest.raises(InfeasibleProgramError):
            solve_map(_infeasible_program(), backend=backend)


class TestMaxWalkSAT:
    def test_deterministic_given_seed(self, running_example_grounding):
        program = running_example_grounding.program
        first = MaxWalkSATSolver(seed=42).solve(program)
        second = MaxWalkSATSolver(seed=42).solve(program)
        assert first.assignment == second.assignment

    def test_close_to_optimal_on_running_example(self, running_example_grounding):
        program = running_example_grounding.program
        optimal = ILPMapSolver().solve(program).objective
        approximate = MaxWalkSATSolver(seed=1).solve(program).objective
        assert approximate >= optimal - 1.0

    def test_not_marked_optimal(self, running_example_grounding):
        solution = MaxWalkSATSolver().solve(running_example_grounding.program)
        assert solution.stats.optimal is False


class TestCuttingPlane:
    def test_matches_full_ilp_on_larger_graph(self, small_noisy_footballdb):
        from repro.logic import sports_pack

        pack = sports_pack()
        result = ground(small_noisy_footballdb.graph, pack.rules, pack.constraints)
        full = ILPMapSolver().solve(result.program)
        cpa = CuttingPlaneSolver().solve(result.program)
        assert cpa.objective == pytest.approx(full.objective, rel=1e-6)

    def test_reports_active_clause_count(self, running_example_grounding):
        solution = CuttingPlaneSolver().solve(running_example_grounding.program)
        extras = dict(solution.stats.extra)
        assert "active_clauses" in extras
        assert extras["active_clauses"] <= running_example_grounding.program.num_clauses


class TestBranchAndBound:
    def test_additive_bound_mode(self, running_example_grounding):
        program = running_example_grounding.program
        solver = BranchAndBoundSolver(use_lp_bound=False)
        reference = ILPMapSolver().solve(program).objective
        assert solver.solve(program).objective == pytest.approx(reference, abs=1e-6)

    def test_respects_node_budget(self, running_example_grounding):
        solver = BranchAndBoundSolver(max_nodes=1)
        solution = solver.solve(running_example_grounding.program)
        # With an exhausted budget the solver still returns a feasible incumbent.
        assert running_example_grounding.program.is_feasible(solution.assignment)


class TestDerivedFactsInSolution:
    def test_derived_kept_facts_listed(self, running_example_grounding):
        program = running_example_grounding.program
        solution = solve_map(program, backend="ilp")
        derived = {str(fact.predicate) for fact in solution.derived_kept_facts(program)}
        assert "worksFor" in derived

    def test_kept_plus_removed_covers_evidence(self, running_example_grounding):
        program = running_example_grounding.program
        solution = solve_map(program, backend="ilp")
        kept_keys = {fact.statement_key for fact in solution.kept_facts(program)}
        removed_keys = {fact.statement_key for fact in solution.removed_facts(program)}
        evidence_keys = {atom.fact.statement_key for atom in program.evidence_atoms()}
        assert evidence_keys <= (kept_keys | removed_keys)
        assert not (kept_keys & removed_keys)
