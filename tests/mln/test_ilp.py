"""Unit tests for the ILP encoding of MAP inference."""

import numpy as np
import pytest

from repro.errors import GroundingError
from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram
from repro.mln import encode


def _simple_program():
    """Two evidence atoms, a hard conflict and a soft rule clause."""
    program = GroundProgram()
    a = program.add_atom(make_fact("a", "p", "b", (1, 2), 0.9), is_evidence=True)
    b = program.add_atom(make_fact("c", "p", "d", (1, 2), 0.6), is_evidence=True)
    h = program.add_atom(make_fact("a", "q", "b", (1, 2), 0.9), is_evidence=False, derived_by="r")
    program.add_clause([(a.index, True)], a.fact.log_weight, ClauseKind.EVIDENCE, "evidence")
    program.add_clause([(b.index, True)], b.fact.log_weight, ClauseKind.EVIDENCE, "evidence")
    program.add_clause([(a.index, False), (b.index, False)], None, ClauseKind.CONSTRAINT, "c")
    program.add_clause([(a.index, False), (h.index, True)], 2.5, ClauseKind.RULE, "r")
    return program, (a, b, h)


class TestEncoding:
    def test_variable_layout(self):
        program, _ = _simple_program()
        encoding = encode(program)
        assert encoding.num_atoms == 3
        assert encoding.num_aux == 1  # only the non-unit soft rule clause
        assert encoding.num_variables == 4

    def test_unit_clauses_fold_into_objective(self):
        program, (a, b, _) = _simple_program()
        encoding = encode(program)
        assert encoding.objective[a.index] == pytest.approx(a.fact.log_weight)
        assert encoding.objective[b.index] == pytest.approx(b.fact.log_weight)

    def test_aux_weight_in_objective(self):
        program, _ = _simple_program()
        encoding = encode(program)
        assert encoding.objective[3] == pytest.approx(2.5)

    def test_hard_clause_row(self):
        program, (a, b, _) = _simple_program()
        encoding = encode(program)
        dense = encoding.constraint_matrix.toarray()
        # Hard clause (¬a ∨ ¬b): -x_a - x_b >= -1.
        hard_rows = [row for row, bound in zip(dense, encoding.lower_bounds) if bound == -1.0]
        assert any(row[a.index] == -1.0 and row[b.index] == -1.0 for row in hard_rows)

    def test_objective_value_matches_program_objective(self):
        program, _ = _simple_program()
        encoding = encode(program)
        for assignment in [(True, False, True), (True, False, False), (False, True, True)]:
            # Auxiliary variable value = clause satisfaction indicator.
            rule_clause_satisfied = (not assignment[0]) or assignment[2]
            vector = np.array([*map(float, assignment), float(rule_clause_satisfied)])
            assert encoding.objective_value(vector) == pytest.approx(
                program.objective(list(assignment))
            )

    def test_negative_unit_weight_handled_via_offset(self):
        program = GroundProgram()
        atom = program.add_atom(make_fact("a", "p", "b", (1, 2), 0.2), is_evidence=True)
        program.add_clause([(atom.index, True)], atom.fact.log_weight, ClauseKind.EVIDENCE, "e")
        encoding = encode(program)
        assert encoding.objective_value([1.0]) == pytest.approx(program.objective([True]))
        assert encoding.objective_value([0.0]) == pytest.approx(program.objective([False]))

    def test_empty_program_rejected(self):
        with pytest.raises(GroundingError):
            encode(GroundProgram())

    def test_assignment_rounding(self):
        program, _ = _simple_program()
        encoding = encode(program)
        assert encoding.assignment_from([0.99, 0.01, 1.0, 0.7]) == (True, False, True)
