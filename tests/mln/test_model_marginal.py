"""Unit tests for the MLN template model and Gibbs marginal inference."""

import math

import pytest

from repro.errors import SolverError
from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram, constraint_c2, rule_f1
from repro.mln import GibbsSampler, MarkovLogicNetwork, marginals


class TestMarkovLogicNetwork:
    def test_formula_listing(self):
        mln = MarkovLogicNetwork(rules=[rule_f1()], constraints=[constraint_c2()])
        assert mln.num_formulas == 2
        listing = mln.formulas()
        assert len(listing) == 2
        assert len(mln.hard_formulas()) == 1
        assert len(mln.soft_formulas()) == 1
        assert "2.5" in str(listing[0])

    def test_extend_and_add(self):
        mln = MarkovLogicNetwork()
        mln.add_rule(rule_f1()).add_constraint(constraint_c2())
        mln.extend(rules=[rule_f1()])
        assert mln.num_formulas == 3

    def test_ground_against_graph(self, ranieri):
        mln = MarkovLogicNetwork(rules=[rule_f1()], constraints=[constraint_c2()])
        result = mln.ground(ranieri)
        assert result.program.num_atoms >= len(ranieri)
        assert len(result.violations) == 1

    def test_log_potential_infeasible_world(self, ranieri):
        mln = MarkovLogicNetwork(constraints=[constraint_c2()])
        result = mln.ground(ranieri)
        keep_everything = [True] * result.program.num_atoms
        assert mln.log_potential(result.program, keep_everything) == -math.inf

    def test_world_probability_ratio(self, ranieri):
        mln = MarkovLogicNetwork(constraints=[constraint_c2()])
        result = mln.ground(ranieri)
        program = result.program
        napoli_index = next(
            atom.index for atom in program.atoms if str(atom.fact.object) == "Napoli"
        )
        without_napoli = [True] * program.num_atoms
        without_napoli[napoli_index] = False
        chelsea_index = next(
            atom.index for atom in program.atoms if str(atom.fact.object) == "Chelsea"
        )
        without_chelsea = [True] * program.num_atoms
        without_chelsea[chelsea_index] = False
        ratio = mln.world_probability_ratio(program, without_napoli, without_chelsea)
        assert ratio > 1.0  # dropping the weaker fact is the more probable world


class TestGibbsSampler:
    def _program(self):
        program = GroundProgram()
        a = program.add_atom(make_fact("x", "coach", "A", (1, 5), 0.95), is_evidence=True)
        b = program.add_atom(make_fact("x", "coach", "B", (2, 4), 0.55), is_evidence=True)
        program.add_clause([(a.index, True)], a.fact.log_weight, ClauseKind.EVIDENCE, "e")
        program.add_clause([(b.index, True)], b.fact.log_weight, ClauseKind.EVIDENCE, "e")
        program.add_clause([(a.index, False), (b.index, False)], None, ClauseKind.CONSTRAINT, "c")
        return program, a, b

    def test_marginals_respect_relative_confidence(self):
        program, a, b = self._program()
        result = marginals(program, samples=600, burn_in=100, seed=3)
        assert result.probabilities[a.index] > result.probabilities[b.index]
        assert 0.0 <= result.probabilities[b.index] <= 1.0

    def test_probability_of_lookup(self):
        program, a, _ = self._program()
        result = marginals(program, samples=200, burn_in=50)
        assert result.probability_of(program, a.fact) == result.probabilities[a.index]
        with pytest.raises(SolverError):
            result.probability_of(program, make_fact("nobody", "p", "x", (1, 2)))

    def test_deterministic_given_seed(self):
        program, _, _ = self._program()
        first = marginals(program, samples=200, burn_in=50, seed=11)
        second = marginals(program, samples=200, burn_in=50, seed=11)
        assert first.probabilities == second.probabilities

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            GibbsSampler(samples=0)

    def test_initial_state_size_checked(self):
        program, _, _ = self._program()
        with pytest.raises(SolverError):
            GibbsSampler(samples=10, burn_in=0).run(program, initial=[True])
