"""Tests for the benchmark reporting/gating tools.

``benchmarks/_report.py`` (the ``BENCH_*.json`` writer) and
``benchmarks/check_regression.py`` (the CI regression gate) are plain
scripts, not part of the ``repro`` package, so they are loaded by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).parent.parent / "benchmarks"


def load_module(name, monkeypatch=None):
    spec = importlib.util.spec_from_file_location(name, BENCHMARKS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def report(tmp_path, monkeypatch):
    module = load_module("_report")
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
    return module


@pytest.fixture
def gate():
    return load_module("check_regression")


class TestWriteBenchJson:
    def test_record_schema(self, report, tmp_path):
        path = report.write_bench_json(
            "demo",
            workload={"dataset": "ranieri", "facts": 12},
            timings={"full_seconds": 1.23456789, "fast_seconds": 0.2},
            speedup=6.1728,
            stats={"atoms": 42},
        )
        assert path == tmp_path / "BENCH_demo.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["benchmark"] == "demo"
        assert payload["workload"] == {"dataset": "ranieri", "facts": 12}
        assert payload["timings"] == {"full_seconds": 1.234568, "fast_seconds": 0.2}
        assert payload["speedup"] == 6.173  # rounded to 3 decimals
        assert payload["stats"] == {"atoms": 42}
        assert isinstance(payload["python"], str)
        assert isinstance(payload["platform"], str)

    def test_optional_fields_omitted(self, report, tmp_path):
        path = report.write_bench_json("bare", workload={}, timings={"t": 1.0})
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "speedup" not in payload
        assert "stats" not in payload

    def test_overwrites_existing_record(self, report, tmp_path):
        target = tmp_path / "BENCH_demo.json"
        target.write_text("{not json at all", encoding="utf-8")  # stale garbage
        report.write_bench_json("demo", workload={}, timings={"t": 2.0}, speedup=3.0)
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["speedup"] == 3.0

    def test_creates_results_dir(self, report, tmp_path, monkeypatch):
        nested = tmp_path / "nested"
        monkeypatch.setattr(report, "RESULTS_DIR", nested)
        report.write_bench_json("demo", workload={}, timings={"t": 1.0})
        assert (nested / "BENCH_demo.json").exists()


def write_record(directory, name, speedup=None):
    payload = {"benchmark": name, "workload": {}, "timings": {"t": 1.0}}
    if speedup is not None:
        payload["speedup"] = speedup
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload), encoding="utf-8")


def write_baselines(path, mapping):
    path.write_text(json.dumps(mapping), encoding="utf-8")


class TestRegressionGate:
    def test_passes_within_band(self, gate, tmp_path, capsys):
        write_record(tmp_path, "alpha", speedup=4.0)
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {"alpha": {"speedup": 5.0}})
        code = gate.main(
            ["--results-dir", str(tmp_path), "--baselines", str(baselines), "--tolerance", "0.4"]
        )
        assert code == 0
        assert "within the tolerance band" in capsys.readouterr().out

    def test_fails_on_regression(self, gate, tmp_path, capsys):
        write_record(tmp_path, "alpha", speedup=1.1)
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {"alpha": {"speedup": 5.0}})
        code = gate.main(
            ["--results-dir", str(tmp_path), "--baselines", str(baselines), "--tolerance", "0.4"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exact_floor_is_not_a_regression(self, gate, tmp_path):
        write_record(tmp_path, "alpha", speedup=3.0)
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {"alpha": {"speedup": 5.0}})
        code = gate.main(
            ["--results-dir", str(tmp_path), "--baselines", str(baselines), "--tolerance", "0.4"]
        )
        assert code == 0

    def test_missing_baseline_warns_but_passes(self, gate, tmp_path, capsys):
        write_record(tmp_path, "fresh", speedup=2.0)
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {})
        code = gate.main(["--results-dir", str(tmp_path), "--baselines", str(baselines)])
        assert code == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_missing_record_warns_but_passes(self, gate, tmp_path, capsys):
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {"ghost": {"speedup": 4.0}})
        code = gate.main(["--results-dir", str(tmp_path), "--baselines", str(baselines)])
        assert code == 0
        assert "no fresh record" in capsys.readouterr().out

    def test_record_without_speedup_not_gated(self, gate, tmp_path, capsys):
        write_record(tmp_path, "plain")  # timings only
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {"plain": {"speedup": 9.9}})
        code = gate.main(["--results-dir", str(tmp_path), "--baselines", str(baselines)])
        assert code == 0
        assert "not gated" in capsys.readouterr().out

    def test_malformed_record_is_an_error(self, gate, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{broken", encoding="utf-8")
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {})
        code = gate.main(["--results-dir", str(tmp_path), "--baselines", str(baselines)])
        assert code == 2
        assert "unreadable benchmark record" in capsys.readouterr().out

    def test_malformed_baselines_is_an_error(self, gate, tmp_path, capsys):
        write_record(tmp_path, "alpha", speedup=2.0)
        baselines = tmp_path / "baselines.json"
        baselines.write_text("[1, 2, 3]", encoding="utf-8")
        code = gate.main(["--results-dir", str(tmp_path), "--baselines", str(baselines)])
        assert code == 2
        assert "must hold an object" in capsys.readouterr().out

    def test_malformed_baseline_entry_is_an_error(self, gate, tmp_path, capsys):
        write_record(tmp_path, "alpha", speedup=2.0)
        baselines = tmp_path / "baselines.json"
        baselines.write_text('{"alpha": 2.6}', encoding="utf-8")  # bare number
        code = gate.main(["--results-dir", str(tmp_path), "--baselines", str(baselines)])
        assert code == 2
        assert "must be an object" in capsys.readouterr().out

    def test_bad_tolerance_is_an_error(self, gate, tmp_path):
        baselines = tmp_path / "baselines.json"
        write_baselines(baselines, {})
        code = gate.main(
            ["--results-dir", str(tmp_path), "--baselines", str(baselines), "--tolerance", "1.5"]
        )
        assert code == 2

    def test_update_rewrites_baselines(self, gate, tmp_path):
        write_record(tmp_path, "alpha", speedup=4.2)
        write_record(tmp_path, "plain")  # no speedup: not recorded
        baselines = tmp_path / "baselines.json"
        code = gate.main(
            ["--results-dir", str(tmp_path), "--baselines", str(baselines), "--update"]
        )
        assert code == 0
        assert json.loads(baselines.read_text(encoding="utf-8")) == {"alpha": {"speedup": 4.2}}

    def test_repo_baselines_cover_committed_records(self, gate):
        """Every committed speedup record has a committed baseline entry."""
        records = gate.load_records(BENCHMARKS_DIR / "results")
        baselines = gate.load_baselines(BENCHMARKS_DIR / "baselines.json")
        gated = {name for name, rec in records.items() if rec.get("speedup") is not None}
        assert gated <= set(baselines)
