"""Unit tests for the predefined rule/constraint library."""

import pytest

from repro.errors import LogicError
from repro.logic import (
    available_packs,
    biography_pack,
    constraint_c1,
    constraint_c2,
    constraint_c3,
    load_pack,
    rule_f1,
    rule_f2,
    rule_f3,
    running_example_constraints,
    running_example_pack,
    running_example_rules,
    sports_pack,
)


class TestRunningExampleDefinitions:
    def test_rule_weights_match_paper(self):
        assert rule_f1().weight == 2.5
        assert rule_f2().weight == 1.6
        assert rule_f3().weight == 2.9

    def test_rule_predicates_match_paper(self):
        assert rule_f1().predicates() == {"playsFor", "worksFor"}
        assert rule_f2().predicates() == {"worksFor", "locatedIn", "livesIn"}
        assert "type" in rule_f3().predicates()

    def test_f2_has_intersection_head_interval(self):
        assert rule_f2().head_interval is not None

    def test_constraints_are_hard(self):
        assert constraint_c1().is_hard
        assert constraint_c2().is_hard
        assert constraint_c3().is_hard

    def test_c2_can_be_softened(self):
        assert constraint_c2(weight=2.0).weight == 2.0

    def test_running_example_sets(self):
        assert [rule.name for rule in running_example_rules()] == ["f1", "f2", "f3"]
        assert [constraint.name for constraint in running_example_constraints()] == [
            "c1", "c2", "c3"
        ]


class TestPacks:
    def test_available_packs(self):
        assert set(available_packs()) == {"running-example", "sports", "biography"}

    def test_load_pack_by_name(self):
        pack = load_pack("sports")
        assert pack.name == "sports"
        assert len(pack.rules) == 3
        assert len(pack.constraints) >= 5

    def test_unknown_pack_raises(self):
        with pytest.raises(LogicError):
            load_pack("astronomy")

    def test_running_example_pack_is_exactly_the_paper(self):
        pack = running_example_pack()
        assert len(pack.rules) == 3
        assert len(pack.constraints) == 3

    def test_sports_pack_has_plays_for_constraint(self):
        names = {constraint.name for constraint in sports_pack().constraints}
        assert "onePlaysFor" in names
        assert "bornBeforePlaying" in names

    def test_biography_pack_relations(self):
        pack = biography_pack()
        predicates = set()
        for constraint in pack.constraints:
            predicates |= constraint.predicates()
        assert {"spouse", "educatedAt", "memberOf", "occupation"} <= predicates

    def test_biography_pack_has_soft_constraint(self):
        pack = biography_pack()
        assert any(not constraint.is_hard for constraint in pack.constraints)

    def test_pack_constraints_are_independent_instances(self):
        first = load_pack("running-example").constraints
        second = load_pack("running-example").constraints
        assert first is not second
