"""Unit tests for temporal rules and constraints (template level)."""

import pytest

from repro.errors import UnsafeRuleError
from repro.kg import IRI
from repro.logic import (
    ConstraintKind,
    RuleBuilder,
    Substitution,
    TemporalConstraint,
    TemporalRule,
    var,
)
from repro.logic.builder import (
    ConstraintBuilder,
    compare,
    disjoint,
    equal,
    intersect,
    not_equal,
    overlaps,
    quad,
)
from repro.logic.expressions import IntervalStart
from repro.temporal import TimeInterval


class TestTemporalRule:
    def test_simple_rule(self):
        rule = RuleBuilder("f1").body(quad("x", "playsFor", "y", "t")).head(
            quad("x", "worksFor", "y", "t")
        ).weight(2.5).build()
        assert rule.weight == 2.5
        assert not rule.is_hard
        assert rule.predicates() == {"playsFor", "worksFor"}

    def test_hard_rule(self):
        rule = (
            RuleBuilder("r")
            .body(quad("x", "hasP", "y", "t"))
            .head(quad("x", "hasQ", "y", "t"))
            .hard()
            .build()
        )
        assert rule.is_hard

    def test_empty_body_rejected(self):
        with pytest.raises(UnsafeRuleError):
            TemporalRule(name="bad", body=(), head=quad("x", "hasP", "y", "t"))

    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(UnsafeRuleError):
            builder = RuleBuilder("bad").body(quad("x", "hasP", "y", "t"))
            builder.head(quad("x", "hasQ", "z", "t")).build()

    def test_unsafe_condition_variable_rejected(self):
        with pytest.raises(UnsafeRuleError):
            (
                RuleBuilder("bad")
                .body(quad("x", "hasP", "y", "t"))
                .when(overlaps("t", "t9"))
                .head(quad("x", "hasQ", "y", "t"))
                .build()
            )

    def test_head_constant_interval_is_safe(self):
        rule = (
            RuleBuilder("ok")
            .body(quad("x", "hasP", "y", "t"))
            .head(quad("x", "hasQ", "y", (1990, 1999)))
            .build()
        )
        assert rule.head_interval_for(Substitution.empty()) == TimeInterval(1990, 1999)

    def test_head_interval_from_body_variable(self):
        rule = (
            RuleBuilder("f1")
            .body(quad("x", "hasP", "y", "t"))
            .head(quad("x", "hasQ", "y", "t"))
            .build()
        )
        substitution = Substitution.of({var("t"): TimeInterval(2000, 2004)})
        assert rule.head_interval_for(substitution) == TimeInterval(2000, 2004)

    def test_head_interval_expression(self):
        rule = (
            RuleBuilder("f2")
            .body(quad("x", "hasP", "y", "t"), quad("y", "hasQ", "z", "t2"))
            .head(quad("x", "hasR", "z", "t"), interval=intersect("t", "t2"))
            .build()
        )
        substitution = Substitution.of(
            {var("t"): TimeInterval(2000, 2004), var("t2"): TimeInterval(2002, 2010)}
        )
        assert rule.head_interval_for(substitution) == TimeInterval(2002, 2004)

    def test_head_interval_expression_empty_intersection(self):
        rule = (
            RuleBuilder("f2")
            .body(quad("x", "hasP", "y", "t"), quad("y", "hasQ", "z", "t2"))
            .head(quad("x", "hasR", "z", "t"), interval=intersect("t", "t2"))
            .build()
        )
        substitution = Substitution.of(
            {var("t"): TimeInterval(2000, 2001), var("t2"): TimeInterval(2005, 2010)}
        )
        assert rule.head_interval_for(substitution) is None

    def test_str_includes_weight(self):
        rule = (
            RuleBuilder("f1")
            .body(quad("x", "hasP", "y", "t"))
            .head(quad("x", "hasQ", "y", "t"))
            .weight(2.5)
            .build()
        )
        assert "2.5" in str(rule)
        assert "f1" in str(rule)

    def test_builder_requires_head(self):
        with pytest.raises(Exception):
            RuleBuilder("nohead").body(quad("x", "hasP", "y", "t")).build()


class TestTemporalConstraint:
    def _c2(self, weight=None):
        builder = (
            ConstraintBuilder("c2")
            .body(quad("x", "coach", "y", "t"), quad("x", "coach", "z", "t2"))
            .when(not_equal("y", "z"))
            .require(disjoint("t", "t2"))
        )
        return builder.weight(weight).build() if weight is not None else builder.hard().build()

    def test_hard_and_soft(self):
        assert self._c2().is_hard
        assert not self._c2(weight=1.5).is_hard

    def test_kind_inference(self):
        assert self._c2().kind is ConstraintKind.DISJOINTNESS
        equality = (
            ConstraintBuilder("c3")
            .body(quad("x", "bornIn", "y", "t"), quad("x", "bornIn", "z", "t2"))
            .when(overlaps("t", "t2"))
            .require(equal("y", "z"))
            .hard()
            .build()
        )
        assert equality.kind is ConstraintKind.EQUALITY_GENERATING

    def test_violated_by(self):
        constraint = self._c2()
        clash = Substitution.of(
            {
                var("y"): IRI("Chelsea"),
                var("z"): IRI("Napoli"),
                var("t"): TimeInterval(2000, 2004),
                var("t2"): TimeInterval(2001, 2003),
            }
        )
        fine = Substitution.of(
            {
                var("y"): IRI("Chelsea"),
                var("z"): IRI("Leicester"),
                var("t"): TimeInterval(2000, 2004),
                var("t2"): TimeInterval(2015, 2017),
            }
        )
        same_club = Substitution.of(
            {
                var("y"): IRI("Chelsea"),
                var("z"): IRI("Chelsea"),
                var("t"): TimeInterval(2000, 2004),
                var("t2"): TimeInterval(2001, 2003),
            }
        )
        assert constraint.violated_by(clash)
        assert not constraint.violated_by(fine)
        assert not constraint.violated_by(same_club)  # body condition y != z fails

    def test_arithmetic_head_condition(self):
        constraint = (
            ConstraintBuilder("bornBefore")
            .body(quad("x", "birthDate", "y", "t"), quad("x", "playsFor", "z", "t2"))
            .require(compare(IntervalStart(var("t")), "<", IntervalStart(var("t2"))))
            .hard()
            .build()
        )
        ok = Substitution.of(
            {var("t"): TimeInterval(1951, 2017), var("t2"): TimeInterval(1984, 1986)}
        )
        bad = Substitution.of(
            {var("t"): TimeInterval(1990, 2017), var("t2"): TimeInterval(1984, 1986)}
        )
        assert not constraint.violated_by(ok)
        assert constraint.violated_by(bad)

    def test_empty_body_rejected(self):
        with pytest.raises(UnsafeRuleError):
            TemporalConstraint(name="bad", body=())

    def test_single_atom_pure_denial_rejected(self):
        with pytest.raises(UnsafeRuleError):
            TemporalConstraint(name="bad", body=(quad("x", "hasP", "y", "t"),))

    def test_unsafe_condition_variable_rejected(self):
        with pytest.raises(UnsafeRuleError):
            (
                ConstraintBuilder("bad")
                .body(quad("x", "hasP", "y", "t"), quad("x", "hasP", "z", "t2"))
                .require(disjoint("t", "t9"))
                .hard()
                .build()
            )

    def test_predicates(self):
        assert self._c2().predicates() == {"coach"}

    def test_str_marks_hard_constraints(self):
        assert "∞" in str(self._c2())
        assert "1.5" in str(self._c2(weight=1.5))

    def test_pure_denial_with_condition(self):
        constraint = (
            ConstraintBuilder("denial")
            .body(quad("x", "spouse", "y", "t"), quad("x", "spouse", "z", "t2"))
            .when(not_equal("y", "z"), overlaps("t", "t2"))
            .hard()
            .build()
        )
        assert constraint.kind is ConstraintKind.DENIAL
        clash = Substitution.of(
            {
                var("y"): IRI("A"),
                var("z"): IRI("B"),
                var("t"): TimeInterval(1, 5),
                var("t2"): TimeInterval(3, 8),
            }
        )
        assert constraint.violated_by(clash)
