"""Unit tests for arithmetic expressions in rule conditions."""

import pytest

from repro.errors import LogicError
from repro.kg import IRI, Literal
from repro.logic import Substitution, var
from repro.logic.expressions import (
    BinaryOp,
    IntervalDuration,
    IntervalEnd,
    IntervalStart,
    Number,
    TermValue,
    as_expression,
)
from repro.temporal import TimeInterval


@pytest.fixture
def bindings():
    return Substitution.of(
        {
            var("t"): TimeInterval(1984, 1986),
            var("t2"): TimeInterval(1951, 2017),
            var("y"): Literal.integer(1951),
            var("club"): IRI("Chelsea"),
        }
    )


class TestLeaves:
    def test_number(self, bindings):
        assert Number(20).evaluate(bindings) == 20.0

    def test_interval_accessors(self, bindings):
        assert IntervalStart(var("t")).evaluate(bindings) == 1984
        assert IntervalEnd(var("t")).evaluate(bindings) == 1986
        assert IntervalDuration(var("t")).evaluate(bindings) == 3

    def test_unbound_interval_raises(self, bindings):
        with pytest.raises(LogicError):
            IntervalStart(var("missing")).evaluate(bindings)

    def test_term_value_numeric_literal(self, bindings):
        assert TermValue(var("y")).evaluate(bindings) == 1951

    def test_term_value_interval_uses_start(self, bindings):
        assert TermValue(var("t")).evaluate(bindings) == 1984

    def test_term_value_non_numeric_iri_raises(self, bindings):
        with pytest.raises(LogicError):
            TermValue(var("club")).evaluate(bindings)

    def test_term_value_unbound_raises(self, bindings):
        with pytest.raises(LogicError):
            TermValue(var("nothing")).evaluate(bindings)

    def test_variables_reported(self):
        assert IntervalStart(var("t")).variables() == {var("t")}
        assert Number(1).variables() == set()


class TestBinaryOp:
    def test_arithmetic(self, bindings):
        expression = BinaryOp("-", IntervalStart(var("t")), TermValue(var("y")))
        assert expression.evaluate(bindings) == 33  # age at start of Palermo spell

    def test_nested(self, bindings):
        expression = BinaryOp("*", Number(2), BinaryOp("+", Number(3), Number(4)))
        assert expression.evaluate(bindings) == 14

    def test_division_by_zero(self, bindings):
        with pytest.raises(LogicError):
            BinaryOp("/", Number(1), Number(0)).evaluate(bindings)

    def test_unknown_operator(self):
        with pytest.raises(LogicError):
            BinaryOp("%", Number(1), Number(2))

    def test_variables_union(self):
        expression = BinaryOp("-", IntervalStart(var("t")), TermValue(var("y")))
        assert expression.variables() == {var("t"), var("y")}

    def test_str(self):
        assert str(BinaryOp("-", Number(5), Number(2))) == "(5 - 2)"


class TestAsExpression:
    def test_pass_through(self):
        expression = Number(1)
        assert as_expression(expression) is expression

    def test_number_coercion(self):
        assert as_expression(20).evaluate(Substitution.empty()) == 20.0

    def test_variable_coercion(self, bindings):
        assert as_expression(var("y")).evaluate(bindings) == 1951

    def test_invalid_value(self):
        with pytest.raises(LogicError):
            as_expression(object())
