"""Unit tests for quad atoms and condition atoms."""

import pytest

from repro.errors import LogicError
from repro.kg import IRI, make_fact
from repro.logic import Substitution, var
from repro.logic.atom import AllenAtom, Comparison, QuadAtom, TermEquality, evaluate_conditions
from repro.logic.builder import quad
from repro.logic.expressions import IntervalStart, Number
from repro.temporal import TimeInterval


@pytest.fixture
def coach_fact():
    return make_fact("CR", "coach", "Chelsea", (2000, 2004), 0.9)


class TestQuadAtomMatch:
    def test_match_binds_all_variables(self, coach_fact):
        atom = quad("x", "coach", "y", "t")
        result = atom.match(coach_fact, Substitution.empty())
        assert result is not None
        assert result.term(var("x")) == IRI("CR")
        assert result.term(var("y")) == IRI("Chelsea")
        assert result.interval(var("t")) == TimeInterval(2000, 2004)

    def test_match_fails_on_wrong_predicate(self, coach_fact):
        assert quad("x", "playsFor", "y", "t").match(coach_fact, Substitution.empty()) is None

    def test_match_respects_existing_bindings(self, coach_fact):
        atom = quad("x", "coach", "y", "t")
        bound = Substitution.of({var("x"): IRI("JM")})
        assert atom.match(coach_fact, bound) is None

    def test_match_with_constant_object(self, coach_fact):
        assert quad("x", "coach", "Chelsea", "t").match(
            coach_fact, Substitution.empty()
        ) is not None
        assert quad("x", "coach", "Arsenal", "t").match(coach_fact, Substitution.empty()) is None

    def test_match_with_fixed_interval(self, coach_fact):
        matching = QuadAtom(var("x"), IRI("coach"), var("y"), TimeInterval(2000, 2004))
        not_matching = QuadAtom(var("x"), IRI("coach"), var("y"), TimeInterval(1999, 2004))
        assert matching.match(coach_fact, Substitution.empty()) is not None
        assert not_matching.match(coach_fact, Substitution.empty()) is None

    def test_repeated_variable_must_agree(self):
        fact = make_fact("CR", "knows", "CR", (1, 2))
        other = make_fact("CR", "knows", "JM", (1, 2))
        atom = quad("x", "knows", "x", "t")
        assert atom.match(fact, Substitution.empty()) is not None
        assert atom.match(other, Substitution.empty()) is None


class TestQuadAtomIntrospection:
    def test_variables(self):
        atom = quad("x", "coach", "y", "t")
        assert atom.variables() == {var("x"), var("y"), var("t")}
        assert atom.entity_variables() == {var("x"), var("y")}
        assert atom.interval_variable() == var("t")

    def test_is_ground(self):
        assert not quad("x", "coach", "y", "t").is_ground()
        ground_atom = QuadAtom(IRI("CR"), IRI("coach"), IRI("Chelsea"), TimeInterval(1, 2))
        assert ground_atom.is_ground()

    def test_bound_pattern(self, coach_fact):
        atom = quad("x", "coach", "y", "t")
        substitution = Substitution.of({var("x"): IRI("CR")})
        subject, predicate, obj = atom.bound_pattern(substitution)
        assert subject == IRI("CR")
        assert predicate == IRI("coach")
        assert obj is None

    def test_str(self):
        assert str(quad("x", "coach", "y", "t")) == "quad(x, coach, y, t)"


class TestQuadAtomInstantiate:
    def test_instantiate_from_bindings(self):
        atom = quad("x", "worksFor", "y", "t")
        substitution = Substitution.of(
            {var("x"): IRI("CR"), var("y"): IRI("Chelsea"), var("t"): TimeInterval(2000, 2004)}
        )
        fact = atom.instantiate(substitution, confidence=0.8)
        assert fact.predicate == IRI("worksFor")
        assert fact.interval == TimeInterval(2000, 2004)
        assert fact.confidence == pytest.approx(0.8)

    def test_instantiate_with_override_interval(self):
        atom = quad("x", "livesIn", "z", "t")
        substitution = Substitution.of({var("x"): IRI("CR"), var("z"): IRI("London")})
        fact = atom.instantiate(substitution, interval=TimeInterval(2001, 2003))
        assert fact.interval == TimeInterval(2001, 2003)

    def test_instantiate_unbound_entity_raises(self):
        atom = quad("x", "worksFor", "y", "t")
        with pytest.raises(LogicError):
            atom.instantiate(Substitution.of({var("x"): IRI("CR"), var("t"): TimeInterval(1, 2)}))

    def test_instantiate_unbound_interval_raises(self):
        atom = quad("x", "worksFor", "y", "t")
        substitution = Substitution.of({var("x"): IRI("CR"), var("y"): IRI("Chelsea")})
        with pytest.raises(LogicError):
            atom.instantiate(substitution)


class TestConditionAtoms:
    def test_allen_atom_holds(self):
        substitution = Substitution.of(
            {var("t"): TimeInterval(2000, 2004), var("t2"): TimeInterval(2001, 2003)}
        )
        assert AllenAtom("overlaps", var("t"), var("t2")).holds(substitution)
        assert not AllenAtom("disjoint", var("t"), var("t2")).holds(substitution)

    def test_allen_atom_unknown_relation(self):
        with pytest.raises(LogicError):
            AllenAtom("near", var("t"), var("t2"))

    def test_allen_atom_unbound_raises(self):
        with pytest.raises(LogicError):
            AllenAtom("overlaps", var("t"), var("t2")).holds(Substitution.empty())

    def test_comparison(self):
        substitution = Substitution.of({var("t"): TimeInterval(1984, 1986)})
        condition = Comparison(IntervalStart(var("t")), "<", Number(1990))
        assert condition.holds(substitution)
        assert not Comparison(IntervalStart(var("t")), ">", Number(1990)).holds(substitution)

    def test_term_equality(self):
        substitution = Substitution.of({var("y"): IRI("Chelsea"), var("z"): IRI("Napoli")})
        assert TermEquality(var("y"), var("z"), negated=True).holds(substitution)
        assert not TermEquality(var("y"), var("z")).holds(substitution)
        assert TermEquality(var("y"), IRI("Chelsea")).holds(substitution)

    def test_term_equality_unbound_raises(self):
        with pytest.raises(LogicError):
            TermEquality(var("y"), var("z")).holds(Substitution.empty())

    def test_evaluate_conditions_conjunction(self):
        substitution = Substitution.of(
            {var("t"): TimeInterval(2000, 2004), var("t2"): TimeInterval(2001, 2003)}
        )
        conditions = (
            AllenAtom("overlaps", var("t"), var("t2")),
            Comparison(IntervalStart(var("t")), "<", Number(2001)),
        )
        assert evaluate_conditions(conditions, substitution)
        failing = conditions + (AllenAtom("disjoint", var("t"), var("t2")),)
        assert not evaluate_conditions(failing, substitution)

    def test_condition_str_forms(self):
        assert str(AllenAtom("before", var("t"), var("t2"))) == "before(t, t2)"
        assert "!=" in str(TermEquality(var("y"), var("z"), negated=True))
