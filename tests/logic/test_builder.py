"""Unit tests for the fluent builders and the constraints editor."""

import pytest

from repro.errors import LogicError
from repro.kg import IRI, Literal, TemporalKnowledgeGraph
from repro.logic import ConstraintEditor, ConstraintKind, Variable
from repro.logic.builder import (
    allen,
    parse_interval_symbol,
    parse_symbol,
    quad,
)
from repro.temporal import TimeInterval


class TestSymbolConventions:
    def test_short_lowercase_is_variable(self):
        assert parse_symbol("x") == Variable("x")
        assert parse_symbol("t2") == Variable("t2")
        assert parse_symbol("t'") == Variable("t'")

    def test_explicit_question_mark_is_variable(self):
        assert parse_symbol("?person") == Variable("person")

    def test_longer_names_are_constants(self):
        assert parse_symbol("playsFor") == IRI("playsFor")
        assert parse_symbol("Chelsea") == IRI("Chelsea")

    def test_capitalised_single_letter_is_constant(self):
        assert parse_symbol("X") == IRI("X")

    def test_numbers_become_literals(self):
        assert parse_symbol(1951) == Literal.integer(1951)

    def test_interval_symbol_variants(self):
        assert parse_interval_symbol("t") == Variable("t")
        assert parse_interval_symbol((2000, 2004)) == TimeInterval(2000, 2004)
        assert parse_interval_symbol("[2000,2004]") == TimeInterval(2000, 2004)

    def test_quad_rejects_literal_predicate(self):
        with pytest.raises(LogicError):
            quad("x", 42, "y", "t")

    def test_allen_requires_variables(self):
        with pytest.raises(LogicError):
            allen("overlaps", "Chelsea", "t")


class TestConstraintEditor:
    @pytest.fixture
    def graph(self):
        graph = TemporalKnowledgeGraph(name="editor")
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "birthDate", 1951, (1951, 2017), 1.0))
        graph.add(("CR", "worksFor", "Chelsea", (2000, 2004), 0.9))
        return graph

    def test_predicate_autocompletion(self, graph):
        editor = ConstraintEditor(graph)
        assert editor.complete("co") == ["coach"]
        assert set(editor.complete("")) == {"coach", "birthDate", "worksFor"}

    def test_relations_listed(self, graph):
        editor = ConstraintEditor(graph)
        assert "before" in editor.relations()
        assert "overlaps" in editor.relations()

    def test_relate_builds_paper_ui_example(self, graph):
        # The paper's UI example: birthDate must be before worksFor.
        editor = ConstraintEditor(graph)
        constraint = editor.relate("birthDate", "worksFor", "before")
        assert constraint.is_hard
        assert constraint.predicates() == {"birthDate", "worksFor"}
        assert constraint.kind is ConstraintKind.INCLUSION_DEPENDENCY

    def test_relate_unknown_predicate_raises(self, graph):
        editor = ConstraintEditor(graph)
        with pytest.raises(LogicError):
            editor.relate("coachedBy", "worksFor", "before")

    def test_relate_unknown_relation_raises(self, graph):
        editor = ConstraintEditor(graph)
        with pytest.raises(LogicError):
            editor.relate("birthDate", "worksFor", "sometimeAround")

    def test_functional_over_time_is_c2_shape(self, graph):
        constraint = ConstraintEditor(graph).functional_over_time("coach")
        assert constraint.kind is ConstraintKind.DISJOINTNESS
        assert constraint.is_hard
        assert len(constraint.body) == 2

    def test_soft_weight_passthrough(self, graph):
        constraint = ConstraintEditor(graph).functional_over_time("coach", weight=2.0)
        assert constraint.weight == 2.0

    def test_unique_value_shape(self, graph):
        constraint = ConstraintEditor(graph).unique_value("birthDate")
        assert constraint.kind is ConstraintKind.EQUALITY_GENERATING

    def test_mutually_exclusive(self, graph):
        constraint = ConstraintEditor(graph).mutually_exclusive("coach", "worksFor")
        assert constraint.kind is ConstraintKind.DISJOINTNESS

    def test_editor_without_graph_accepts_any_predicate(self):
        editor = ConstraintEditor()
        constraint = editor.functional_over_time("coach")
        assert constraint.predicates() == {"coach"}
        assert editor.predicates() == []

    def test_generated_names_are_unique(self, graph):
        editor = ConstraintEditor(graph)
        first = editor.functional_over_time("coach")
        second = editor.functional_over_time("worksFor")
        assert first.name != second.name
