"""Unit tests for the Datalog-style rule/constraint parser."""

import pytest

from repro.errors import ParseError
from repro.kg import IRI
from repro.logic import (
    Substitution,
    TemporalConstraint,
    TemporalRule,
    parse_constraint,
    parse_program,
    parse_rule,
    parse_statement,
    var,
)
from repro.logic.atom import AllenAtom, Comparison, TermEquality
from repro.temporal import TimeInterval


class TestParseRule:
    def test_f1(self):
        rule = parse_rule("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5")
        assert rule.name == "f1"
        assert rule.weight == 2.5
        assert len(rule.body) == 1
        assert rule.head.predicate == IRI("worksFor")

    def test_f2_with_intersection_head(self):
        rule = parse_rule(
            "f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t2) & overlaps(t, t2)"
            " -> quad(x, livesIn, z, intersection(t, t2)) w=1.6"
        )
        assert len(rule.body) == 2
        assert len(rule.conditions) == 1
        assert isinstance(rule.conditions[0], AllenAtom)
        assert rule.head_interval is not None
        bindings = {"t": TimeInterval(2000, 2004), "t2": TimeInterval(2002, 2010)}
        assert rule.head_interval.evaluate(bindings) == TimeInterval(2002, 2004)

    def test_f3_with_arithmetic_condition(self):
        rule = parse_rule(
            "f3: quad(x, playsFor, y, t) & quad(x, birthDate, z, t2)"
            " & start(t) - start(t2) < 20 -> quad(x, type, TeenPlayer, t) w=2.9"
        )
        assert len(rule.conditions) == 1
        condition = rule.conditions[0]
        assert isinstance(condition, Comparison)
        substitution = Substitution.of(
            {var("t"): TimeInterval(1970, 1972), var("t2"): TimeInterval(1951, 2017)}
        )
        assert condition.holds(substitution)

    def test_default_weight_is_one(self):
        rule = parse_rule("quad(x, hasP, y, t) -> quad(x, hasQ, y, t)")
        assert rule.weight == 1.0
        assert rule.name.startswith("stmt")

    def test_infinite_weight_makes_hard_rule(self):
        rule = parse_rule("quad(x, hasP, y, t) -> quad(x, hasQ, y, t) w=inf")
        assert rule.is_hard

    def test_comma_separator(self):
        rule = parse_rule("r: quad(x, hasP, y, t), quad(y, hasQ, z, t2) -> quad(x, hasR, z, t)")
        assert len(rule.body) == 2

    def test_parse_rule_rejects_constraint(self):
        with pytest.raises(ParseError):
            parse_rule("c: quad(x, hasP, y, t) & quad(x, hasP, z, t2) -> disjoint(t, t2)")


class TestParseConstraint:
    def test_c1(self):
        constraint = parse_constraint(
            "c1: quad(x, birthDate, y, t) & quad(x, deathDate, z, t2) -> before(t, t2)"
        )
        assert constraint.is_hard
        assert len(constraint.head_conditions) == 1

    def test_c2(self):
        constraint = parse_constraint(
            "c2: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z -> disjoint(t, t2)"
        )
        assert isinstance(constraint.body_conditions[0], TermEquality)
        assert constraint.body_conditions[0].negated
        assert isinstance(constraint.head_conditions[0], AllenAtom)
        assert constraint.is_hard

    def test_c3(self):
        constraint = parse_constraint(
            "c3: quad(x, bornIn, y, t) & quad(x, bornIn, z, t2) & overlaps(t, t2) -> y = z"
        )
        head = constraint.head_conditions[0]
        assert isinstance(head, TermEquality)
        assert not head.negated

    def test_soft_constraint_weight(self):
        constraint = parse_constraint(
            "c: quad(x, hasP, y, t) & quad(x, hasP, z, t2) & y != z -> disjoint(t, t2) w=1.5"
        )
        assert constraint.weight == 1.5

    def test_parse_constraint_rejects_rule(self):
        with pytest.raises(ParseError):
            parse_constraint("quad(x, hasP, y, t) -> quad(x, hasQ, y, t)")


class TestParseStatementErrors:
    def test_empty_statement(self):
        with pytest.raises(ParseError):
            parse_statement("   ")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_statement("quad(x, hasP, y, t) & quad(x, hasQ, y, t)")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_statement("quad(x, hasP, y, t -> quad(x, hasQ, y, t)")

    def test_junk_character(self):
        with pytest.raises(ParseError):
            parse_statement("quad(x, hasP, y, t) -> quad(x, hasQ, y, t) €")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("quad(x, hasP, y, t) -> quad(x, hasQ, y, t) quad(a, b, c, d)")

    def test_body_without_quad_atom(self):
        with pytest.raises(ParseError):
            parse_statement("overlaps(t, t2) -> quad(x, hasP, y, t)")

    def test_bad_weight(self):
        with pytest.raises(ParseError):
            parse_statement("quad(x, hasP, y, t) -> quad(x, hasQ, y, t) w=heavy")


class TestParseProgram:
    PROGRAM = """
    # the running example
    f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5
    f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t2) & overlaps(t, t2)
        -> quad(x, livesIn, z, intersection(t, t2)) w=1.6

    c1: quad(x, birthDate, y, t) & quad(x, deathDate, z, t2) -> before(t, t2)
    c2: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z -> disjoint(t, t2)
    """

    def test_rules_and_constraints_split(self):
        program = parse_program(self.PROGRAM)
        assert len(program.rules) == 2
        assert len(program.constraints) == 2
        assert {rule.name for rule in program.rules} == {"f1", "f2"}
        assert {constraint.name for constraint in program.constraints} == {"c1", "c2"}

    def test_multiline_statement_joined(self):
        program = parse_program(self.PROGRAM)
        f2 = next(rule for rule in program.rules if rule.name == "f2")
        assert len(f2.body) == 2

    def test_comments_ignored(self):
        program = parse_program("# only a comment\n\n")
        assert len(program) == 0

    def test_unlabelled_statements_get_names(self):
        program = parse_program("quad(x, hasP, y, t) -> quad(x, hasQ, y, t)\n")
        assert program.rules[0].name == "stmt1"

    def test_round_trip_types(self):
        program = parse_program(self.PROGRAM)
        assert all(isinstance(rule, TemporalRule) for rule in program.rules)
        assert all(isinstance(constraint, TemporalConstraint) for constraint in program.constraints)
