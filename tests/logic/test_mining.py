"""Unit tests for the constraint/rule suggestion miner."""

import pytest

from repro import TeCoRe
from repro.datasets import FootballDBConfig, generate_footballdb
from repro.kg import TemporalKnowledgeGraph
from repro.logic import ConstraintKind
from repro.logic.mining import ConstraintMiner, suggest_constraints


@pytest.fixture(scope="module")
def career_graph():
    """A clean multi-person career graph with clear temporal regularities."""
    graph = TemporalKnowledgeGraph(name="mining")
    for index in range(12):
        person = f"P{index}"
        birth = 1950 + index
        graph.add((person, "birthDate", birth, (birth, birth), 1.0))
        graph.add((person, "playsFor", f"Club{index % 4}", (birth + 18, birth + 22), 0.9))
        graph.add((person, "playsFor", f"Club{(index + 1) % 4}", (birth + 23, birth + 27), 0.85))
        # Every playsFor spell is accompanied by a worksFor spell (implication).
        graph.add((person, "worksFor", f"Club{index % 4}", (birth + 18, birth + 22), 0.9))
        graph.add((person, "worksFor", f"Club{(index + 1) % 4}", (birth + 23, birth + 27), 0.85))
    return graph


class TestConstraintMiner:
    def test_functional_over_time_suggested(self, career_graph):
        miner = ConstraintMiner(min_support=5)
        suggestions = miner.suggest_functional(career_graph)
        by_description = {s.description: s for s in suggestions}
        assert any("playsFor" in description for description in by_description)
        plays = next(s for s in suggestions if "playsFor" in s.description)
        assert plays.confidence == 1.0
        assert plays.constraint is not None
        assert plays.constraint.is_hard
        assert plays.constraint.kind is ConstraintKind.DISJOINTNESS

    def test_precedence_suggested(self, career_graph):
        miner = ConstraintMiner(min_support=5)
        suggestions = miner.suggest_precedence(career_graph)
        descriptions = [s.description for s in suggestions]
        assert any("birthDate starts before playsFor" in d for d in descriptions)
        # The converse direction must NOT be suggested.
        assert not any("playsFor starts before birthDate" in d for d in descriptions)

    def test_implication_rule_suggested(self, career_graph):
        miner = ConstraintMiner(min_support=5)
        suggestions = miner.suggest_implications(career_graph)
        rules = [s for s in suggestions if s.rule is not None]
        assert any("playsFor(x, y, t) implies worksFor(x, y, t)" in s.description for s in rules)
        mined = next(s for s in rules if "playsFor(x, y, t) implies worksFor" in s.description)
        assert mined.rule.weight is not None and mined.rule.weight > 0

    def test_suggest_sorts_by_confidence(self, career_graph):
        suggestions = suggest_constraints(career_graph, min_support=5)
        confidences = [s.confidence for s in suggestions]
        assert confidences == sorted(confidences, reverse=True)
        assert all(s.support >= 5 for s in suggestions)

    def test_min_support_filters(self, career_graph):
        strict = ConstraintMiner(min_support=10_000)
        assert strict.suggest(career_graph) == []

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ConstraintMiner(soft_threshold=0.99, hard_threshold=0.9)

    def test_soft_constraint_for_mostly_functional_predicate(self):
        graph = TemporalKnowledgeGraph(name="mostly")
        # 11 conforming subjects, 1 violating subject -> confidence ~0.92.
        for index in range(11):
            graph.add((f"P{index}", "spouse", f"A{index}", (1990, 1999), 0.9))
            graph.add((f"P{index}", "spouse", f"B{index}", (2001, 2010), 0.9))
        graph.add(("P99", "spouse", "X", (1990, 1999), 0.9))
        graph.add(("P99", "spouse", "Y", (1995, 2005), 0.9))
        miner = ConstraintMiner(min_support=5, hard_threshold=0.99, soft_threshold=0.8)
        suggestions = miner.suggest_functional(graph)
        assert len(suggestions) == 1
        constraint = suggestions[0].constraint
        assert constraint is not None
        assert not constraint.is_hard
        assert constraint.weight > 0

    def test_no_suggestions_on_empty_graph(self):
        assert suggest_constraints(TemporalKnowledgeGraph(name="empty")) == []


class TestMinedConstraintsEndToEnd:
    def test_mined_constraints_repair_noisy_footballdb(self):
        """Mine constraints from clean data, then use them to debug noisy data."""
        clean = generate_footballdb(FootballDBConfig(scale=0.02, noise_ratio=0.0, seed=3))
        miner = ConstraintMiner(min_support=20, hard_threshold=0.97, soft_threshold=0.8)
        mined = [s.constraint for s in miner.suggest(clean.graph) if s.constraint is not None]
        assert mined, "mining clean FootballDB must yield at least one constraint"

        noisy = generate_footballdb(FootballDBConfig(scale=0.02, noise_ratio=0.5, seed=4))
        system = TeCoRe(constraints=mined, solver="nrockit")
        result = system.resolve(noisy.graph)
        assert result.statistics.removed_facts > 0
        # Mined constraints should mostly hit the planted noise.
        from repro.metrics import repair_quality

        quality = repair_quality(result.removed_facts, noisy.noise_facts)
        assert quality.precision > 0.6
        assert quality.recall > 0.4
