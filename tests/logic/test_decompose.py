"""Property-based tests for the ground-program decomposition itself."""

import pytest
from hypothesis import given, settings, strategies as st
from program_generators import random_ground_program

from repro.errors import SolverError
from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram, decompose, interaction_graph
from repro.mln import ILPMapSolver

seeds = st.integers(min_value=0, max_value=10_000)


def bfs_components(adjacency):
    """Connected components of an adjacency dict (reference algorithm)."""
    seen = set()
    components = []
    for start in adjacency:
        if start in seen:
            continue
        stack, component = [start], set()
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        seen |= component
        components.append(frozenset(component))
    return components


class TestDecompositionProperties:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_components_partition_the_atom_set(self, seed):
        program = random_ground_program(seed)
        decomposition = decompose(program)
        covered = []
        for component in decomposition.components:
            covered.extend(component.atom_indices)
        covered.extend(decomposition.unconstrained)
        assert sorted(covered) == list(range(program.num_atoms))
        assert len(covered) == len(set(covered))

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_no_clause_spans_two_components(self, seed):
        program = random_ground_program(seed)
        decomposition = decompose(program)
        component_of = {}
        for component in decomposition.components:
            for atom_index in component.atom_indices:
                component_of[atom_index] = component.index
        claimed = []
        for component in decomposition.components:
            claimed.extend(component.clause_indices)
        # Clause sets partition the program's clauses ...
        assert sorted(claimed) == list(range(program.num_clauses))
        # ... and every clause's atoms live in the owning component.
        for component in decomposition.components:
            owned = set(component.atom_indices)
            for clause_index in component.clause_indices:
                for atom_index, _ in program.clauses[clause_index].literals:
                    assert atom_index in owned
                    assert component_of[atom_index] == component.index

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_subprograms_preserve_content(self, seed):
        program = random_ground_program(seed)
        for component in decompose(program).components:
            sub = component.program
            assert sub.num_atoms == component.num_atoms
            assert sub.num_clauses == component.num_clauses
            for local, global_index in enumerate(component.atom_indices):
                original = program.atoms[global_index]
                assert sub.atoms[local].fact == original.fact
                assert sub.atoms[local].is_evidence == original.is_evidence
            for local_clause, clause_index in zip(sub.clauses, component.clause_indices):
                original = program.clauses[clause_index]
                assert local_clause.weight == original.weight
                assert local_clause.kind is original.kind
                remapped = tuple(
                    (component.atom_indices[index], positive)
                    for index, positive in local_clause.literals
                )
                assert remapped == original.literals

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_components_match_interaction_graph(self, seed):
        program = random_ground_program(seed)
        adjacency = interaction_graph(program)
        # Symmetry.
        for node, neighbours in adjacency.items():
            for neighbour in neighbours:
                assert node in adjacency[neighbour]
        decomposition = decompose(program)
        in_clause = set()
        for clause in program.clauses:
            in_clause.update(index for index, _ in clause.literals)
        expected = {component for component in bfs_components(adjacency) if component & in_clause}
        actual = {frozenset(component.atom_indices) for component in decomposition.components}
        assert actual == expected
        assert set(decomposition.unconstrained) == set(adjacency) - in_clause


class TestSingletonRoundTrip:
    def test_fully_connected_program_round_trips_unchanged(self):
        # A chain clause over every atom makes the program one component.
        program = GroundProgram()
        for index in range(5):
            atom = program.add_atom(
                make_fact(f"s{index}", "rel", f"o{index}", (1, 2), 0.8), is_evidence=True
            )
            program.add_clause([(atom.index, True)], 1.0, ClauseKind.EVIDENCE, "e")
        for index in range(4):
            program.add_clause(
                [(index, False), (index + 1, False)], None, ClauseKind.CONSTRAINT, "c"
            )
        decomposition = decompose(program)
        assert decomposition.is_trivial
        assert decomposition.num_components == 1
        assert not decomposition.unconstrained
        component = decomposition.components[0]
        assert component.atom_indices == tuple(range(5))
        assert component.program.canonical_signature() == program.canonical_signature()
        # Merging the single component's solution reproduces it globally.
        solution = ILPMapSolver().solve(component.program)
        merged = decomposition.merge([solution])
        assert merged.assignment == solution.assignment
        assert merged.objective == solution.objective

    def test_empty_program_decomposes_to_nothing(self):
        decomposition = decompose(GroundProgram())
        assert decomposition.num_components == 0
        assert decomposition.unconstrained == ()
        merged = decomposition.merge([])
        assert merged.assignment == ()
        assert merged.objective == 0.0

    def test_unconstrained_atoms_close_by_weight_sign(self):
        program = GroundProgram()
        likely = program.add_atom(make_fact("a", "rel", "x", (1, 2), 0.9), is_evidence=True)
        unlikely = program.add_atom(make_fact("b", "rel", "y", (1, 2), 0.1), is_evidence=True)
        decomposition = decompose(program)
        assert set(decomposition.unconstrained) == {likely.index, unlikely.index}
        merged = decomposition.merge([])
        assert merged.assignment[likely.index] is True
        assert merged.assignment[unlikely.index] is False

    def test_merge_rejects_wrong_solution_count(self):
        program = random_ground_program(0)
        decomposition = decompose(program)
        with pytest.raises(SolverError):
            decomposition.merge([])
