"""Unit tests for the grounding engine and ground programs."""

import pytest

from repro.errors import GroundingError
from repro.kg import TemporalKnowledgeGraph, make_fact
from repro.logic import (
    ClauseKind,
    GroundProgram,
    Grounder,
    find_conflicts,
    ground,
    running_example_constraints,
    running_example_rules,
)
from repro.logic.builder import ConstraintBuilder, disjoint, not_equal, quad
from repro.logic.library import constraint_c2, rule_f1


class TestGroundProgram:
    def _program(self):
        program = GroundProgram()
        a = program.add_atom(make_fact("a", "p", "b", (1, 2), 0.9), is_evidence=True)
        b = program.add_atom(make_fact("c", "p", "d", (1, 2), 0.6), is_evidence=True)
        program.add_clause([(a.index, True)], 2.0, ClauseKind.EVIDENCE, "evidence")
        program.add_clause([(b.index, True)], 0.5, ClauseKind.EVIDENCE, "evidence")
        program.add_clause([(a.index, False), (b.index, False)], None, ClauseKind.CONSTRAINT, "c")
        return program

    def test_atom_registration_is_idempotent(self):
        program = GroundProgram()
        fact = make_fact("a", "p", "b", (1, 2), 0.9)
        first = program.add_atom(fact, is_evidence=True)
        second = program.add_atom(fact.with_confidence(0.5), is_evidence=False)
        assert first.index == second.index
        assert program.num_atoms == 1
        assert program.atoms[0].is_evidence  # evidence status is sticky

    def test_derived_then_evidence_upgrades(self):
        program = GroundProgram()
        fact = make_fact("a", "p", "b", (1, 2), 0.9)
        program.add_atom(fact, is_evidence=False, derived_by="f1")
        upgraded = program.add_atom(fact, is_evidence=True)
        assert upgraded.is_evidence

    def test_objective_and_feasibility(self):
        program = self._program()
        keep_both = [True, True]
        drop_second = [True, False]
        assert not program.is_feasible(keep_both)
        assert program.is_feasible(drop_second)
        assert program.objective(drop_second) == pytest.approx(2.0)
        assert program.objective([False, True]) == pytest.approx(0.5)

    def test_objective_wrong_length(self):
        with pytest.raises(GroundingError):
            self._program().objective([True])

    def test_negative_unit_weight_normalised(self):
        program = GroundProgram()
        atom = program.add_atom(make_fact("a", "p", "b", (1, 2), 0.2), is_evidence=True)
        clause = program.add_clause([(atom.index, True)], -1.5, ClauseKind.EVIDENCE, "evidence")
        assert clause.weight == pytest.approx(1.5)
        assert clause.literals == ((0, False),)

    def test_negative_non_unit_weight_rejected(self):
        program = self._program()
        with pytest.raises(GroundingError):
            program.add_clause([(0, True), (1, True)], -1.0, ClauseKind.RULE, "bad")

    def test_empty_clause_rejected(self):
        with pytest.raises(GroundingError):
            self._program().add_clause([], None, ClauseKind.CONSTRAINT, "bad")

    def test_unknown_atom_index_rejected(self):
        with pytest.raises(GroundingError):
            self._program().add_clause([(99, True)], 1.0, ClauseKind.RULE, "bad")

    def test_summary_counts(self):
        summary = self._program().summary()
        assert summary["atoms"] == 2
        assert summary["hard_clauses"] == 1
        assert summary["soft_clauses"] == 2
        assert summary["constraint_clauses"] == 1

    def test_max_soft_weight(self):
        assert self._program().max_soft_weight() == pytest.approx(2.5)


class TestGrounderRunningExample:
    def test_violations_found(self, running_example_grounding):
        violations = running_example_grounding.violations
        assert len(violations) == 1
        assert violations[0].constraint == "c2"
        objects = {str(fact.object) for fact in violations[0].facts}
        assert objects == {"Chelsea", "Napoli"}

    def test_rule_f1_fires(self, running_example_grounding):
        derived = running_example_grounding.derived_facts()
        assert any(
            str(fact.predicate) == "worksFor" and str(fact.object) == "Palermo" for fact in derived
        )

    def test_clause_kinds(self, running_example_grounding):
        program = running_example_grounding.program
        assert len(program.clauses_of_kind(ClauseKind.EVIDENCE)) == 5
        assert len(program.clauses_of_kind(ClauseKind.CONSTRAINT)) == 1
        assert len(program.clauses_of_kind(ClauseKind.RULE)) >= 1

    def test_conflicting_facts_deduplicated(self, running_example_grounding):
        conflicting = running_example_grounding.conflicting_facts()
        assert len(conflicting) == 2

    def test_evidence_bias_applied(self, running_example_grounding):
        program = running_example_grounding.program
        palermo_clauses = [
            clause
            for clause in program.clauses_of_kind(ClauseKind.EVIDENCE)
            if str(program.atoms[clause.literals[0][0]].fact.object) == "Palermo"
        ]
        # confidence 0.5 has log-odds 0; the keep bias makes the weight positive.
        assert palermo_clauses[0].weight > 0


class TestGrounderChaining:
    def test_two_round_chaining_f1_then_f2(self, ranieri_extended):
        result = ground(ranieri_extended, running_example_rules(), running_example_constraints())
        derived_predicates = {str(fact.predicate) for fact in result.derived_facts()}
        assert "worksFor" in derived_predicates
        assert "livesIn" in derived_predicates  # needs worksFor derived first
        assert result.rounds >= 2

    def test_lives_in_interval_is_intersection(self, ranieri_extended):
        result = ground(ranieri_extended, running_example_rules(), running_example_constraints())
        lives_in = [fact for fact in result.derived_facts() if str(fact.predicate) == "livesIn"]
        palermo_home = [fact for fact in lives_in if str(fact.object) == "PalermoCity"]
        assert palermo_home
        assert palermo_home[0].interval.start == 1984
        assert palermo_home[0].interval.end == 1986

    def test_max_rounds_limits_chaining(self, ranieri_extended):
        grounder = Grounder(
            ranieri_extended,
            rules=running_example_rules(),
            constraints=(),
            max_rounds=1,
        )
        result = grounder.ground()
        derived_predicates = {str(fact.predicate) for fact in result.derived_facts()}
        assert "worksFor" in derived_predicates
        assert "livesIn" not in derived_predicates

    def test_invalid_max_rounds(self, ranieri):
        with pytest.raises(GroundingError):
            Grounder(ranieri, max_rounds=0)

    def test_no_duplicate_firings(self, ranieri):
        result = ground(ranieri, [rule_f1(), rule_f1()], [])
        signatures = {(firing.rule, firing.head.statement_key) for firing in result.firings}
        assert len(signatures) == len(result.firings) or len(result.firings) == 2


class TestFindConflicts:
    def test_find_conflicts_reports_without_rules(self, ranieri):
        violations = find_conflicts(ranieri, running_example_constraints())
        assert len(violations) == 1
        assert violations[0].is_hard

    def test_no_conflicts_on_clean_graph(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Leicester", (2015, 2017), 0.7))
        assert find_conflicts(graph, [constraint_c2()]) == []

    def test_soft_constraint_violation_recorded(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Napoli", (2001, 2003), 0.6))
        soft_c2 = (
            ConstraintBuilder("softC2")
            .body(quad("x", "coach", "y", "t"), quad("x", "coach", "z", "t2"))
            .when(not_equal("y", "z"))
            .require(disjoint("t", "t2"))
            .soft(1.5)
            .build()
        )
        violations = find_conflicts(graph, [soft_c2])
        assert len(violations) == 1
        assert not violations[0].is_hard
        assert violations[0].weight == 1.5

    def test_same_fact_not_matched_against_itself(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        # c2's body could match the same fact twice; the grounder must skip it.
        assert find_conflicts(graph, [constraint_c2()]) == []

    def test_symmetric_violations_deduplicated(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Napoli", (2001, 2003), 0.6))
        violations = find_conflicts(graph, [constraint_c2()])
        assert len(violations) == 1
