"""Span-accuracy regression tests for the statement parser.

Every span reported by :class:`~repro.logic.parser.StatementSpans` must
point at the exact source text of the construct it names — the analyzer's
findings are only as trustworthy as these line/column ranges.  The tests
slice the original program text by the reported spans and compare against
the expected fragments, so any drift in offset bookkeeping fails loudly.
"""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.logic.parser import (
    SourceSpan,
    parse_program,
    parse_raw_statement,
    split_statements,
)


def _slice(text: str, span: SourceSpan) -> str:
    """Cut the exact source fragment a (possibly multi-line) span covers."""
    lines = text.splitlines()
    if span.line == span.end_line:
        return lines[span.line - 1][span.column - 1 : span.end_column - 1]
    parts = [lines[span.line - 1][span.column - 1 :]]
    parts.extend(lines[number] for number in range(span.line, span.end_line - 1))
    parts.append(lines[span.end_line - 1][: span.end_column - 1])
    return "\n".join(parts)


PROGRAM = """\
# The running example, spread over comments and blank lines.

f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5

f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t2) & overlaps(t, t2)
    -> quad(x, livesIn, z, intersection(t, t2)) w=1.6

c1: quad(x, birthDate, b, t) & quad(x, deathDate, d, t2) -> before(t, t2)
"""


def test_body_atom_spans_cover_exact_source_text():
    parsed = parse_program(PROGRAM)
    spans = parsed.annotated[0].spans
    assert _slice(PROGRAM, spans.body[0]) == "quad(x, playsFor, y, t)"
    assert _slice(PROGRAM, spans.head) == "quad(x, worksFor, y, t)"

    spans = parsed.annotated[1].spans
    assert _slice(PROGRAM, spans.body[0]) == "quad(x, worksFor, y, t)"
    assert _slice(PROGRAM, spans.body[1]) == "quad(y, locatedIn, z, t2)"
    assert _slice(PROGRAM, spans.conditions[0]) == "overlaps(t, t2)"


def test_multiline_statement_spans_cross_the_line_break():
    parsed = parse_program(PROGRAM)
    spans = parsed.annotated[1].spans
    # The statement starts on the `f2:` line and its head sits on the
    # continuation line — both coordinates must be physical-line accurate.
    assert spans.statement.line == 5
    assert spans.statement.end_line == 6
    assert spans.head.line == 6
    assert _slice(PROGRAM, spans.head) == "quad(x, livesIn, z, intersection(t, t2))"


def test_constraint_head_condition_span():
    parsed = parse_program(PROGRAM)
    spans = parsed.annotated[2].spans
    assert _slice(PROGRAM, spans.head_conditions[0]) == "before(t, t2)"
    assert spans.head_conditions[0].line == 8


def test_statement_span_excludes_comments_and_blank_lines():
    parsed = parse_program(PROGRAM)
    spans = parsed.annotated[0].spans
    assert spans.statement.line == 3
    assert _slice(PROGRAM, spans.statement).startswith("f1: quad")


def test_spans_are_one_based_and_end_exclusive():
    text = "r: quad(a, p, b, t) -> quad(b, p, a, t) w=1.0"
    block = next(iter(split_statements(text)))
    raw = parse_raw_statement(block.text, block=block, default_name=block.default_name)
    body = raw.spans.body[0]
    assert (body.line, body.column) == (1, 4)
    assert text[body.column - 1 : body.end_column - 1] == "quad(a, p, b, t)"


def test_parse_error_reports_the_physical_line():
    broken = "\n".join(
        [
            "# comment",
            "ok: quad(x, p, y, t) -> quad(y, p, x, t) w=1.0",
            "",
            "bad: quad(x, p, y, t & -> quad(y, p, x, t)",
        ]
    )
    with pytest.raises(ParseError) as excinfo:
        parse_program(broken)
    assert excinfo.value.line == 4


def test_locate_maps_joined_offsets_back_to_source_lines():
    text = "r: quad(x, p, y, t) &\n    before(t, t)\n    -> quad(y, p, x, t) w=1.0"
    block = next(iter(split_statements(text)))
    # Offset 0 is the first character of the label on line 1.
    assert block.locate(0) == (1, 1)
    # The joined text replaces the newline with one space, so the first
    # character after the `&` maps onto line 2's indentation-stripped start.
    joined = block.text
    offset = joined.index("before")
    line, column = block.locate(offset)
    assert line == 2
    assert text.splitlines()[1][column - 1 :].startswith("before")
