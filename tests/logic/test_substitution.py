"""Unit tests for variables and substitutions."""

from repro.kg import IRI, Literal
from repro.logic import Substitution, Variable, var
from repro.temporal import TimeInterval


class TestVariable:
    def test_identity(self):
        assert Variable("x") == var("x")
        assert Variable("x") != Variable("y")

    def test_str(self):
        assert str(var("t")) == "?t"

    def test_hashable_and_ordered(self):
        assert sorted([var("z"), var("a")]) == [var("a"), var("z")]
        assert len({var("x"), var("x"), var("y")}) == 2


class TestSubstitution:
    def test_empty(self):
        substitution = Substitution.empty()
        assert len(substitution) == 0
        assert substitution.get(var("x")) is None
        assert var("x") not in substitution

    def test_bind_and_get(self):
        substitution = Substitution.empty().bind(var("x"), IRI("CR"))
        assert substitution.get(var("x")) == IRI("CR")
        assert var("x") in substitution

    def test_bind_same_value_is_noop(self):
        first = Substitution.empty().bind(var("x"), IRI("CR"))
        second = first.bind(var("x"), IRI("CR"))
        assert second is first

    def test_bind_clash_returns_none(self):
        substitution = Substitution.empty().bind(var("x"), IRI("CR"))
        assert substitution.bind(var("x"), IRI("JM")) is None

    def test_immutability(self):
        base = Substitution.empty()
        extended = base.bind(var("x"), IRI("CR"))
        assert len(base) == 0
        assert len(extended) == 1

    def test_of_mapping(self):
        substitution = Substitution.of({var("x"): IRI("CR"), var("t"): TimeInterval(1, 2)})
        assert len(substitution) == 2

    def test_term_and_interval_accessors(self):
        substitution = Substitution.of({var("x"): IRI("CR"), var("t"): TimeInterval(1, 2)})
        assert substitution.term(var("x")) == IRI("CR")
        assert substitution.term(var("t")) is None
        assert substitution.interval(var("t")) == TimeInterval(1, 2)
        assert substitution.interval(var("x")) is None

    def test_intervals_keyed_by_name(self):
        substitution = Substitution.of({var("t"): TimeInterval(1, 2), var("x"): Literal("a")})
        assert substitution.intervals() == {"t": TimeInterval(1, 2)}

    def test_merge_compatible(self):
        first = Substitution.of({var("x"): IRI("CR")})
        second = Substitution.of({var("y"): IRI("Chelsea")})
        merged = first.merge(second)
        assert merged is not None
        assert len(merged) == 2

    def test_merge_conflicting(self):
        first = Substitution.of({var("x"): IRI("CR")})
        second = Substitution.of({var("x"): IRI("JM")})
        assert first.merge(second) is None

    def test_as_dict_and_iteration(self):
        substitution = Substitution.of({var("x"): IRI("CR")})
        assert substitution.as_dict() == {var("x"): IRI("CR")}
        assert list(substitution) == [(var("x"), IRI("CR"))]

    def test_str(self):
        text = str(Substitution.of({var("x"): IRI("CR")}))
        assert "x=CR" in text
