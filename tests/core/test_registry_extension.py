"""Unit tests for extending the solver registry (the ProbFOL plug-in point).

The paper: "any off-the-shelf probabilistic first-order logic (ProbFOL) system
... can be seamlessly integrated into the TeCoRe system by extending the
translator."  Here we register a toy solver and run the full pipeline on it.
"""

import pytest

from repro import TeCoRe
from repro.core import (
    available_solvers,
    describe_solvers,
    make_solver,
    register_solver,
    solver_family,
)
from repro.core.registry import _REGISTRY
from repro.logic import running_example_constraints, running_example_rules
from repro.solvers import MAPSolution, MAPSolver, MLN_CAPABILITIES, SolverStats


class KeepEverythingSolver(MAPSolver):
    """A trivial ProbFOL back-end: keep every fact unless a hard clause objects."""

    name = "keep-everything"

    @property
    def capabilities(self):
        return MLN_CAPABILITIES

    def solve(self, program):
        assignment = [True] * program.num_atoms
        # Greedily drop the weakest member of each violated hard clause.
        for _ in range(program.num_clauses):
            violations = program.hard_violations(assignment)
            if not violations:
                break
            clause = violations[0]
            weakest = min(clause.literals, key=lambda lit: program.atoms[lit[0]].fact.confidence)
            assignment[weakest[0]] = weakest[1]
        assignment = tuple(assignment)
        return MAPSolution(
            assignment=assignment,
            objective=program.objective(assignment),
            stats=SolverStats(solver=self.name, runtime_seconds=0.0),
            truth_values=tuple(1.0 if value else 0.0 for value in assignment),
        )


@pytest.fixture
def registered_toy_solver():
    register_solver("toy", "custom", "keep everything then repair greedily", KeepEverythingSolver)
    yield "toy"
    _REGISTRY.pop("toy", None)


class TestRegistryExtension:
    def test_registration_visible(self, registered_toy_solver):
        assert "toy" in available_solvers()
        assert solver_family("toy") == "custom"
        entry = next(e for e in describe_solvers() if e.name == "toy")
        assert "greedily" in entry.description
        assert isinstance(make_solver("toy"), KeepEverythingSolver)

    def test_full_pipeline_on_custom_solver(self, registered_toy_solver, ranieri):
        system = TeCoRe(
            rules=running_example_rules(),
            constraints=running_example_constraints(),
            solver="toy",
        )
        result = system.resolve(ranieri)
        assert {str(fact.object) for fact in result.removed_facts} == {"Napoli"}
        assert result.statistics.solver == "toy"

    def test_unregistered_after_fixture(self):
        assert "toy" not in available_solvers()
