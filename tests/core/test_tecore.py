"""Unit tests for the TeCoRe facade, translator, registry and threshold filter."""

import pytest

from repro import TeCoRe, TecoreError, resolve
from repro.core import (
    ThresholdFilter,
    TecoreTranslator,
    available_solvers,
    detect_conflicts,
    make_solver,
    solver_family,
    sweep_thresholds,
)
from repro.errors import SolverNotAvailableError
from repro.kg import make_fact
from repro.logic import running_example_constraints, running_example_rules


class TestRegistry:
    def test_paper_solvers_registered(self):
        names = available_solvers()
        assert "nrockit" in names
        assert "npsl" in names

    def test_solver_families(self):
        assert solver_family("nrockit") == "mln"
        assert solver_family("npsl") == "psl"
        with pytest.raises(SolverNotAvailableError):
            solver_family("prolog")

    def test_make_solver_with_options(self):
        solver = make_solver("nrockit", time_limit=5.0)
        assert solver.time_limit == 5.0

    def test_unknown_solver(self):
        with pytest.raises(SolverNotAvailableError):
            make_solver("alchemy")


class TestTranslator:
    def test_translate_produces_listings(self, ranieri):
        translator = TecoreTranslator()
        translated = translator.translate(
            ranieri, running_example_rules(), running_example_constraints(), solver="nrockit"
        )
        assert translated.family == "mln"
        template = translated.template_listing()
        assert "f1" in template and "c2" in template
        ground_listing = translated.ground_listing(limit=3)
        assert "ground atoms" in ground_listing
        evidence = translated.evidence_listing(limit=2)
        assert "more atoms" in evidence

    def test_summary_includes_template_counts(self, ranieri):
        translated = TecoreTranslator().translate(
            ranieri, running_example_rules(), running_example_constraints(), solver="npsl"
        )
        summary = translated.summary()
        assert summary["rule_templates"] == 3
        assert summary["constraint_templates"] == 3
        assert summary["atoms"] == translated.program.num_atoms

    def test_detect_conflicts_does_not_derive(self, ranieri):
        result = TecoreTranslator().detect_conflicts(ranieri, running_example_constraints())
        assert result.program.derived_atoms() == []
        assert len(result.violations) == 1


class TestTeCoReFacade:
    def test_from_pack_and_from_text_equivalent(self, ranieri):
        from_pack = TeCoRe.from_pack("running-example").resolve(ranieri)
        text = """
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5
        c2: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z -> disjoint(t, t2)
        """
        from_text = TeCoRe.from_text(text).resolve(ranieri)
        assert {str(f.object) for f in from_pack.removed_facts} == {
            str(f.object) for f in from_text.removed_facts
        }

    def test_with_solver_copies_configuration(self):
        system = TeCoRe.from_pack("running-example", solver="nrockit", threshold=0.5)
        other = system.with_solver("npsl")
        assert other.solver == "npsl"
        assert other.threshold == 0.5
        assert len(other.rules) == len(system.rules)

    def test_add_rule_and_constraint(self):
        system = TeCoRe()
        system.add_rule(running_example_rules()[0])
        system.add_constraint(running_example_constraints()[1])
        assert len(system.rules) == 1
        assert len(system.constraints) == 1

    def test_expand_applies_rules_only(self, ranieri):
        system = TeCoRe.from_pack("running-example")
        expanded = system.expand(ranieri)
        assert len(expanded) == len(ranieri) + 1  # the worksFor fact
        # expand() must not remove the conflicting Napoli fact.
        assert any(str(fact.object) == "Napoli" for fact in expanded)

    def test_detect_conflicts_endpoint(self, ranieri):
        system = TeCoRe.from_pack("running-example")
        violations = system.detect_conflicts(ranieri)
        assert len(violations) == 1

    def test_module_level_resolve(self, ranieri):
        result = resolve(
            ranieri,
            rules=running_example_rules(),
            constraints=running_example_constraints(),
            solver="npsl",
        )
        assert result.statistics.removed_facts == 1

    def test_module_level_detect(self, ranieri):
        assert len(detect_conflicts(ranieri, running_example_constraints())) == 1

    def test_solver_options_forwarded(self, ranieri):
        system = TeCoRe.from_pack(
            "running-example", solver="maxwalksat", solver_options={"seed": 5, "max_flips": 500}
        )
        result = system.resolve(ranieri)
        assert result.statistics.removed_facts == 1

    def test_result_as_dict_serialisable(self, ranieri):
        import json

        result = TeCoRe.from_pack("running-example").resolve(ranieri)
        text = json.dumps(result.as_dict())
        assert "Napoli" in text

    def test_kept_and_removed_predicates(self, ranieri):
        result = TeCoRe.from_pack("running-example").resolve(ranieri)
        napoli = next(fact for fact in ranieri if str(fact.object) == "Napoli")
        chelsea = next(fact for fact in ranieri if str(fact.object) == "Chelsea")
        assert result.removed(napoli)
        assert result.kept(chelsea)
        assert not result.kept(napoli)


class TestThreshold:
    def test_filter_accepts_everything_when_unset(self):
        filter_ = ThresholdFilter(None)
        assert filter_.accepts(make_fact("a", "p", "b", (1, 2), 0.01))

    def test_filter_split(self):
        facts = [make_fact("a", "p", "b", (1, 2), 0.3), make_fact("a", "p", "c", (1, 2), 0.9)]
        accepted, rejected = ThresholdFilter(0.5).split(facts)
        assert len(accepted) == 1 and len(rejected) == 1

    def test_invalid_threshold(self):
        with pytest.raises(TecoreError):
            ThresholdFilter(1.5)

    def test_sweep(self):
        facts = [make_fact("a", "p", str(i), (1, 2), c) for i, c in enumerate((0.2, 0.5, 0.9))]
        sweep = sweep_thresholds(facts, [0.0, 0.4, 0.6, 1.0])
        assert sweep == [(0.0, 3), (0.4, 2), (0.6, 1), (1.0, 0)]

    def test_threshold_filters_derived_facts_in_resolution(self, ranieri):
        # Derived facts carry confidence 0.9 by default; a 0.95 threshold drops them.
        strict = TeCoRe.from_pack("running-example", threshold=0.95).resolve(ranieri)
        assert strict.statistics.inferred_facts == 0
        assert strict.statistics.inferred_below_threshold >= 1
        relaxed = TeCoRe.from_pack("running-example", threshold=0.5).resolve(ranieri)
        assert relaxed.statistics.inferred_facts >= 1
