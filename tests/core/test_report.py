"""Unit tests for the report rendering (the demo's statistics panels)."""

from repro import TeCoRe, render_graph_summary, render_report
from repro.core import render_comparison


class TestRenderReport:
    def test_report_contains_statistics(self, running_example_system, ranieri):
        result = running_example_system.resolve(ranieri)
        text = render_report(result)
        assert "conflicting facts" in text
        assert "removed facts" in text
        assert "Napoli" in text
        assert "nrockit" in text

    def test_report_lists_sections(self, running_example_system, ranieri):
        result = running_example_system.resolve(ranieri)
        text = render_report(result)
        assert "removed (conflicting) statements:" in text
        assert "newly inferred statements:" in text
        assert "consistent statements:" in text

    def test_report_respects_limit(self, running_example_system, ranieri):
        result = running_example_system.resolve(ranieri)
        text = render_report(result, limit=1)
        assert "... 3 more" in text

    def test_threshold_mentioned_when_set(self, ranieri):
        result = TeCoRe.from_pack("running-example", threshold=0.95).resolve(ranieri)
        assert "threshold 0.95" in render_report(result)


class TestRenderGraphSummary:
    def test_summary_lists_predicates(self, ranieri):
        text = render_graph_summary(ranieri)
        assert "coach" in text
        assert "playsFor" in text
        assert "5 facts" in text

    def test_summary_of_empty_graph(self, empty_graph):
        text = render_graph_summary(empty_graph)
        assert "0 facts" in text


class TestRenderComparison:
    def test_comparison_table(self, ranieri):
        mln = TeCoRe.from_pack("running-example", solver="nrockit").resolve(ranieri)
        psl = TeCoRe.from_pack("running-example", solver="npsl").resolve(ranieri)
        table = render_comparison([mln, psl])
        assert "nrockit" in table
        assert "npsl" in table
        assert "removed" in table
