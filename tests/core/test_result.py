"""Unit tests for resolution statistics and result helpers."""

import pytest

from repro.core import ResolutionStatistics


def _stats(**overrides) -> ResolutionStatistics:
    defaults = dict(
        input_facts=100,
        consistent_facts=90,
        removed_facts=10,
        inferred_facts=5,
        conflicting_facts=18,
        violations=12,
        hard_violations=9,
        soft_violations=3,
        objective=123.4,
        runtime_seconds=0.5,
        solver="nrockit",
        ground_atoms=105,
        ground_clauses=140,
    )
    defaults.update(overrides)
    return ResolutionStatistics(**defaults)


class TestResolutionStatistics:
    def test_rates(self):
        stats = _stats()
        assert stats.removal_rate == pytest.approx(0.10)
        assert stats.conflict_rate == pytest.approx(0.18)

    def test_rates_on_empty_input(self):
        stats = _stats(input_facts=0, consistent_facts=0, removed_facts=0, conflicting_facts=0)
        assert stats.removal_rate == 0.0
        assert stats.conflict_rate == 0.0

    def test_as_dict_round_trips_key_fields(self):
        data = _stats(threshold=0.7, inferred_below_threshold=2).as_dict()
        assert data["solver"] == "nrockit"
        assert data["removed_facts"] == 10
        assert data["threshold"] == 0.7
        assert data["inferred_below_threshold"] == 2
        assert data["removal_rate"] == pytest.approx(0.10)

    def test_hard_and_soft_violations_sum(self):
        stats = _stats()
        assert stats.hard_violations + stats.soft_violations == stats.violations


class TestResolutionResultHelpers:
    def test_violations_by_constraint_and_accessors(self, running_example_system, ranieri):
        result = running_example_system.resolve(ranieri)
        assert result.objective == pytest.approx(result.solution.objective)
        assert result.solver_stats.solver == "nrockit-ilp"
        assert result.violations_by_constraint() == {"c2": 1}

    def test_expanded_graph_contains_consistent_and_inferred(self, running_example_system, ranieri):
        result = running_example_system.resolve(ranieri)
        for fact in result.consistent_graph:
            assert fact in result.expanded_graph
        for fact in result.inferred_facts:
            assert fact in result.expanded_graph
