"""End-to-end behaviour of *soft* constraints.

The paper: constraints "become hard (deterministic) or soft (uncertain)
formulas in MLNs and PSL".  A soft constraint trades its weight against the
evidence weights of the facts it would remove, so the MAP repair keeps both
conflicting facts when the constraint is weak and removes the weaker fact when
the constraint outweighs it.
"""

import pytest

from repro import TeCoRe, TemporalKnowledgeGraph
from repro.core import available_solvers
from repro.logic import constraint_c2


@pytest.fixture
def overlapping_coaches():
    graph = TemporalKnowledgeGraph(name="soft")
    graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))  # log-odds ≈ 2.20
    graph.add(("CR", "coach", "Napoli", (2001, 2003), 0.6))  # log-odds ≈ 0.41
    return graph


class TestSoftConstraintTradeoff:
    def test_weak_soft_constraint_keeps_both_facts(self, overlapping_coaches):
        weak = TeCoRe(constraints=[constraint_c2(weight=0.1)], solver="nrockit")
        result = weak.resolve(overlapping_coaches)
        assert result.statistics.removed_facts == 0
        # The violation is still *reported*, it is just not worth repairing.
        assert result.statistics.violations == 1
        assert result.statistics.soft_violations == 1

    def test_strong_soft_constraint_removes_weaker_fact(self, overlapping_coaches):
        strong = TeCoRe(constraints=[constraint_c2(weight=5.0)], solver="nrockit")
        result = strong.resolve(overlapping_coaches)
        assert {str(fact.object) for fact in result.removed_facts} == {"Napoli"}

    def test_hard_constraint_always_repairs(self, overlapping_coaches):
        hard = TeCoRe(constraints=[constraint_c2()], solver="nrockit")
        result = hard.resolve(overlapping_coaches)
        assert result.statistics.removed_facts == 1
        assert result.statistics.hard_violations == 1

    def test_crossover_point_matches_log_odds(self, overlapping_coaches):
        """The repair flips exactly where the constraint weight crosses the
        weaker fact's log-odds (≈ 0.41 for confidence 0.6)."""
        napoli_log_odds = 0.4054651
        below = TeCoRe(constraints=[constraint_c2(weight=napoli_log_odds - 0.05)], solver="nrockit")
        above = TeCoRe(constraints=[constraint_c2(weight=napoli_log_odds + 0.05)], solver="nrockit")
        assert below.resolve(overlapping_coaches).statistics.removed_facts == 0
        assert above.resolve(overlapping_coaches).statistics.removed_facts == 1

    @pytest.mark.parametrize("solver", sorted(available_solvers()))
    def test_all_solvers_respect_strong_soft_constraint(self, overlapping_coaches, solver):
        system = TeCoRe(constraints=[constraint_c2(weight=5.0)], solver=solver)
        result = system.resolve(overlapping_coaches)
        assert {str(fact.object) for fact in result.removed_facts} == {"Napoli"}


class TestMixedHardAndSoft:
    def test_soft_violations_counted_separately(self, overlapping_coaches):
        overlapping_coaches.add(("CR", "coach", "Valencia", (2004, 2005), 0.55))
        system = TeCoRe(
            constraints=[constraint_c2(weight=0.05)],
            solver="nrockit",
        )
        result = system.resolve(overlapping_coaches)
        assert result.statistics.soft_violations >= 2
        assert result.statistics.hard_violations == 0
