"""Tests for the batched resolution API (`TeCoRe.resolve_batch`)."""

import pytest

from repro import TeCoRe, resolve_batch
from repro.core import BatchResolution
from repro.datasets import ranieri_extended_graph, ranieri_graph
from repro.logic import running_example_constraints, running_example_rules


@pytest.fixture
def graphs():
    return [ranieri_graph(), ranieri_extended_graph(), ranieri_graph()]


@pytest.fixture
def system():
    return TeCoRe.from_pack("running-example", solver="nrockit")


class TestResolveBatch:
    def test_returns_batch_resolution(self, system, graphs):
        batch = system.resolve_batch(graphs)
        assert isinstance(batch, BatchResolution)
        assert len(batch) == 3

    def test_results_in_input_order(self, system, graphs):
        batch = system.resolve_batch(graphs)
        assert [result.input_graph.name for result in batch] == [graph.name for graph in graphs]
        assert batch[1].input_graph is graphs[1]

    def test_matches_individual_resolve(self, system, graphs):
        """Batching is a pure serving optimisation: per-graph results match."""
        batch = system.resolve_batch(graphs)
        for graph, batched in zip(graphs, batch):
            single = system.resolve(graph)
            assert batched.solution.assignment == single.solution.assignment
            assert batched.objective == pytest.approx(single.objective)
            assert {str(fact) for fact in batched.removed_facts} == {
                str(fact) for fact in single.removed_facts
            }
            assert {str(fact) for fact in batched.inferred_facts} == {
                str(fact) for fact in single.inferred_facts
            }

    def test_running_example_repair_in_batch(self, system, graphs):
        batch = system.resolve_batch(graphs)
        removed = {str(fact.object) for fact in batch[0].removed_facts}
        assert removed == {"Napoli"}

    def test_aggregates(self, system, graphs):
        batch = system.resolve_batch(graphs)
        assert batch.total_input_facts == sum(len(graph) for graph in graphs)
        assert batch.total_removed_facts == sum(result.statistics.removed_facts for result in batch)
        assert batch.total_violations >= 3  # one per ranieri-style graph
        assert batch.runtime_seconds > 0
        assert batch.graphs_per_second > 0

    def test_empty_batch(self, system):
        batch = system.resolve_batch([])
        assert len(batch) == 0
        assert batch.total_input_facts == 0
        assert batch.graphs_per_second == 0 or batch.runtime_seconds > 0

    def test_as_dict(self, system, graphs):
        payload = system.resolve_batch(graphs).as_dict()
        assert payload["graphs"] == 3
        assert len(payload["results"]) == 3
        assert payload["total_input_facts"] == sum(len(graph) for graph in graphs)

    def test_batch_with_psl_solver(self, graphs):
        system = TeCoRe.from_pack("running-example", solver="npsl")
        batch = system.resolve_batch(graphs)
        removed = {str(fact.object) for fact in batch[0].removed_facts}
        assert removed == {"Napoli"}

    def test_batch_with_naive_engine_matches_indexed(self, graphs):
        indexed = TeCoRe.from_pack("running-example", engine="indexed").resolve_batch(graphs)
        naive = TeCoRe.from_pack("running-example", engine="naive").resolve_batch(graphs)
        for left, right in zip(indexed, naive):
            assert left.solution.assignment == right.solution.assignment


class TestModuleLevelResolveBatch:
    def test_convenience_function(self, graphs):
        batch = resolve_batch(
            graphs,
            rules=running_example_rules(),
            constraints=running_example_constraints(),
            solver="nrockit",
        )
        assert len(batch) == 3
        assert {str(fact.object) for fact in batch[0].removed_facts} == {"Napoli"}
