"""Unit tests for the incremental resolution session and its caches."""

import pytest

from repro import TeCoRe
from repro.core.session import ComponentSolutionCache, component_content_key
from repro.datasets import ranieri_graph
from repro.logic import Grounder, running_example_constraints, running_example_rules

NAPOLI = ("CR", "coach", "Napoli", (2001, 2003), 0.6)
LEICESTER = ("CR", "coach", "Leicester", (2015, 2016), 0.97)


@pytest.fixture
def system():
    return TeCoRe.from_pack("running-example", solver="nrockit")


class TestSessionLifecycle:
    def test_initial_result_matches_one_shot_resolve(self, system):
        session = system.session(ranieri_graph())
        reference = system.resolve(ranieri_graph())
        assert session.result.objective == reference.objective
        assert {f.statement_key for f in session.result.removed_facts} == {
            f.statement_key for f in reference.removed_facts
        }
        assert session.result.delta is not None
        assert session.result.delta.components_total >= 1
        assert session.result.delta.components_dirty == session.result.delta.components_total

    def test_caller_graph_never_mutated(self, system):
        graph = ranieri_graph()
        size = len(graph)
        session = system.session(graph)
        session.apply(removes=[NAPOLI], adds=[LEICESTER])
        assert len(graph) == size
        assert len(session.graph) == size  # one removed, one added

    def test_apply_reports_delta_statistics(self, system):
        session = system.session(ranieri_graph())
        result = session.apply(removes=[NAPOLI])
        delta = result.delta
        assert delta.facts_removed == 1
        assert delta.facts_added == 0
        assert delta.clauses_retracted >= 1
        assert delta.components_cached > 0  # untouched components reused
        assert delta.components_dirty + delta.components_cached == delta.components_total

    def test_noop_apply_skips_resolution(self, system):
        session = system.session(ranieri_graph())
        hits_before = session.cache.hits
        misses_before = session.cache.misses
        result = session.apply()  # empty edit
        assert result.delta.facts_changed == 0
        assert session.cache.hits == hits_before
        assert session.cache.misses == misses_before
        # Removing an absent statement is also a no-op.
        result = session.apply(removes=[("Nobody", "coach", "Nowhere", (1900, 1901))])
        assert result.delta.facts_changed == 0

    def test_edit_then_revert_hits_cache_everywhere(self, system):
        session = system.session(ranieri_graph())
        session.apply(removes=[NAPOLI])
        result = session.apply(adds=[NAPOLI])
        # The program is back to its initial content: every component was
        # solved before, so nothing is dirty.
        assert result.delta.components_dirty == 0
        assert result.delta.components_cached == result.delta.components_total
        assert result.objective == system.resolve(ranieri_graph()).objective

    def test_apply_renames_result_graph(self, system):
        session = system.session(ranieri_graph())
        result = session.apply(adds=[LEICESTER], graph_name="edited")
        assert result.input_graph.name == "edited"
        result = session.apply(graph_name="same-but-renamed")
        assert result.input_graph.name == "same-but-renamed"

    def test_state_summary_counters(self, system):
        session = system.session(ranieri_graph())
        session.apply(removes=[NAPOLI])
        summary = session.state_summary()
        assert summary["steps"] == 2
        assert summary["cache_entries"] == summary["cache_misses"]
        assert summary["saturated"] == 1


class TestDegradedMode:
    def test_unsaturated_rule_set_served_correctly(self):
        """Rule chains outrunning the fix-point bound degrade gracefully."""
        from repro.logic import RuleBuilder, quad

        predicates = [f"hopS{index}" for index in range(6)]
        rules = [
            RuleBuilder(f"chainS{index}")
            .body(quad("x", source, "y", "t"))
            .head(quad("x", target, "y", "t"))
            .weight(1.2)
            .build()
            for index, (source, target) in enumerate(zip(predicates, predicates[1:]))
        ]
        system = TeCoRe(rules=rules, solver="nrockit", max_rounds=2)
        graph = ranieri_graph()
        base = graph.add(("X", "hopS0", "Y", (2000, 2001), 0.9))
        session = system.session(graph)
        # Force the degraded mode regardless of chain depth.
        session._grounder.fixpoint_rounds = 1
        session._grounder.saturated = False

        result = session.apply(adds=[("X", "hopS2", "Y", (2010, 2011), 0.7)])
        reference_graph = graph.copy()
        reference_graph.add(("X", "hopS2", "Y", (2010, 2011), 0.7))
        reference = system.resolve(reference_graph)
        assert result.objective == reference.objective
        assert result.delta.components_total == 1
        assert result.delta.components_dirty == 1
        # Reverting to a previously seen program hits the whole-program cache.
        session.apply(removes=[("X", "hopS2", "Y", (2010, 2011))])
        result = session.apply(adds=[("X", "hopS2", "Y", (2010, 2011), 0.7)])
        assert result.delta.components_cached == 1
        assert result.objective == reference.objective
        assert base in session.graph


class TestWarmStarts:
    @pytest.mark.parametrize("solver", ["maxwalksat", "npsl", "nrockit-bnb"])
    def test_warm_started_session_stays_feasible(self, solver):
        system = TeCoRe.from_pack("running-example", solver=solver)
        session = system.session(ranieri_graph(), warm_start=True)
        result = session.apply(adds=[LEICESTER])
        assert result.delta.warm_started > 0
        program = Grounder(
            session.graph,
            rules=running_example_rules(),
            constraints=running_example_constraints(),
        ).ground().program
        assert program.canonical_signature()  # grounding sane
        assert result.solution.assignment  # solved

    def test_warm_start_keeps_exact_backend_exact(self):
        """Branch & bound with a warm incumbent still returns the optimum."""
        cold = TeCoRe.from_pack("running-example", solver="nrockit-bnb")
        warm_session = cold.session(ranieri_graph(), warm_start=True)
        warm = warm_session.apply(removes=[NAPOLI])
        graph = ranieri_graph()
        graph.remove(NAPOLI)
        reference = cold.resolve(graph)
        assert warm.objective == pytest.approx(reference.objective, abs=1e-9)

    def test_cold_session_never_warm_starts(self, system):
        session = system.session(ranieri_graph(), warm_start=False)
        result = session.apply(removes=[NAPOLI])
        assert result.delta.warm_started == 0


class TestComponentSolutionCache:
    def test_lru_eviction(self):
        cache = ComponentSolutionCache(max_entries=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"  # refresh a
        cache.put(("c",), "C")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"
        assert len(cache) == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ComponentSolutionCache(max_entries=0)

    def test_clear_resets_hit_and_miss_statistics(self):
        # Regression: clear() kept the old counters, skewing the hit rates
        # reported by `tecore watch` summaries and the /stats endpoint.
        cache = ComponentSolutionCache(max_entries=4)
        cache.put(("a",), "A")
        cache.get(("a",))
        cache.get(("missing",))
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_component_key_tracks_weight_changes(self, system):
        """Bumping a confidence must dirty the containing component."""
        graph = ranieri_graph()
        program = Grounder(
            graph,
            rules=running_example_rules(),
            constraints=running_example_constraints(),
        ).ground().program
        key_before = component_content_key(program)
        bumped = graph.copy()
        bumped.add(("CR", "coach", "Napoli", (2001, 2003), 0.8))  # max-confidence merge
        program_after = Grounder(
            bumped,
            rules=running_example_rules(),
            constraints=running_example_constraints(),
        ).ground().program
        assert component_content_key(program_after) != key_before


class TestIncrementalBatch:
    def test_incremental_batch_matches_per_graph_resolution(self):
        pack_system = TeCoRe.from_pack("running-example", solver="nrockit", decompose=True)
        base = ranieri_graph()
        variant = base.copy(name="ranieri-edited")
        variant.remove(NAPOLI)
        variant.add(LEICESTER)
        batch = pack_system.resolve_batch(
            [base, variant, base.copy(name="ranieri-back")], incremental=True
        )
        assert len(batch) == 3
        assert [result.input_graph.name for result in batch] == [
            "ranieri",
            "ranieri-edited",
            "ranieri-back",
        ]
        for graph, result in zip([base, variant, base], batch):
            reference = pack_system.resolve(graph.copy(name=graph.name))
            assert result.objective == reference.objective
            assert result.solution.assignment == reference.solution.assignment
        # The edited graph differs by two facts from its predecessor.
        assert batch[1].delta.facts_changed == 2
        assert batch[2].delta.facts_changed == 2

    def test_incremental_batch_confidence_downgrade(self):
        """Lowering a confidence must be served as remove + re-add."""
        system = TeCoRe.from_pack("running-example", solver="nrockit")
        base = ranieri_graph()
        lowered = base.copy(name="ranieri-lowered")
        lowered.remove(NAPOLI)
        lowered.add(("CR", "coach", "Napoli", (2001, 2003), 0.4))
        batch = system.resolve_batch([base, lowered], incremental=True)
        reference = system.resolve(lowered.copy(name="ranieri-lowered"))
        assert batch[1].objective == reference.objective
        assert batch[1].delta.facts_removed == 1
        assert batch[1].delta.facts_added == 1
