"""End-to-end reproduction of the paper's running example (experiment E1).

Figure 1 (the input UTKG), Figure 4 (rules f1-f3), Figure 6 (constraints
c1-c3) and Figure 7 (the MAP result keeping facts 1-4 and removing fact 5)
are all encoded here; every registered solver must reproduce Figure 7.
"""

import pytest

from repro import TeCoRe
from repro.core import available_solvers
from repro.datasets import (
    RANIERI_EXPECTED_KEPT,
    RANIERI_EXPECTED_REMOVED,
    RANIERI_FACTS,
    ranieri_graph,
)
from repro.kg import coerce_fact


class TestFigure1Input:
    def test_graph_matches_figure_1(self, ranieri):
        assert len(ranieri) == 5
        assert len(RANIERI_FACTS) == 5
        for fact in RANIERI_FACTS:
            assert fact in ranieri

    def test_confidences_match_figure_1(self, ranieri):
        by_object = {str(fact.object): fact.confidence for fact in ranieri}
        assert by_object["Chelsea"] == pytest.approx(0.9)
        assert by_object["Leicester"] == pytest.approx(0.7)
        assert by_object["Palermo"] == pytest.approx(0.5)
        assert by_object["1951"] == pytest.approx(1.0)
        assert by_object["Napoli"] == pytest.approx(0.6)


@pytest.mark.parametrize("solver", sorted(available_solvers()))
class TestFigure7AllSolvers:
    """Every registered back-end must compute the Figure 7 repair."""

    def test_napoli_fact_removed(self, solver):
        system = TeCoRe.from_pack("running-example", solver=solver)
        result = system.resolve(ranieri_graph())
        removed_objects = {str(fact.object) for fact in result.removed_facts}
        assert removed_objects == {"Napoli"}

    def test_facts_1_to_4_kept(self, solver):
        system = TeCoRe.from_pack("running-example", solver=solver)
        result = system.resolve(ranieri_graph())
        for raw in RANIERI_EXPECTED_KEPT:
            assert coerce_fact(raw) in result.consistent_graph
        assert coerce_fact(RANIERI_EXPECTED_REMOVED) not in result.consistent_graph


class TestConflictExplanation:
    def test_conflict_is_c2_between_chelsea_and_napoli(self, running_example_system, ranieri):
        result = running_example_system.resolve(ranieri)
        assert result.statistics.violations == 1
        assert result.violations_by_constraint() == {"c2": 1}
        conflicting = {str(fact.object) for fact in result.conflicting_facts}
        assert conflicting == {"Chelsea", "Napoli"}

    def test_weaker_fact_loses(self, running_example_system, ranieri):
        # The paper: "the later is removed since it has inferior weight".
        result = running_example_system.resolve(ranieri)
        removed = result.removed_facts[0]
        chelsea = next(fact for fact in ranieri if str(fact.object) == "Chelsea")
        assert removed.confidence < chelsea.confidence

    def test_statistics_panel_numbers(self, running_example_system, ranieri):
        statistics = running_example_system.resolve(ranieri).statistics
        assert statistics.input_facts == 5
        assert statistics.consistent_facts == 4
        assert statistics.removed_facts == 1
        assert statistics.conflicting_facts == 2
        assert statistics.removal_rate == pytest.approx(0.2)

    def test_rule_expansion_in_inferred_graph(self, running_example_system, ranieri):
        # f1 derives worksFor(CR, Palermo, [1984,1986]) which survives MAP.
        result = running_example_system.resolve(ranieri)
        inferred_predicates = {str(fact.predicate) for fact in result.inferred_facts}
        assert "worksFor" in inferred_predicates
        assert len(result.expanded_graph) == len(result.consistent_graph) + len(
            result.inferred_facts
        )
