"""Differential suite: incremental resolution ≡ from-scratch resolution.

The contract of the incremental engine is absolute: after *any* sequence of
fact insertions and retractions, the maintained grounding must be
bit-for-bit identical to a from-scratch :class:`~repro.logic.IndexedGrounder`
pass over the mutated graph (same atoms, same clause emission order, same
floats), and the merged MAP objective of a
:class:`~repro.core.session.ResolutionSession` must equal a from-scratch
resolve for exact back-ends.  The suite drives randomized edit streams,
cascading retraction through rule chains, evidence/derived status flips, and
the ``max_rounds`` truncation corner, comparing against from-scratch replicas
after every step.
"""

import random

import pytest

from repro import TeCoRe
from repro.datasets import ranieri_extended_graph, ranieri_graph
from repro.kg import TemporalKnowledgeGraph, make_fact
from repro.logic import (
    GROUNDING_ENGINES,
    IncrementalGrounder,
    IndexedGrounder,
    RuleBuilder,
    make_grounder,
    quad,
    running_example_constraints,
    running_example_rules,
    sports_pack,
)


def assert_state_matches(incremental, replica, rules, constraints, max_rounds=5):
    """The maintained grounding must be bit-for-bit the from-scratch one."""
    reference = IndexedGrounder(
        replica, rules=rules, constraints=constraints, max_rounds=max_rounds
    ).ground()
    current = incremental.ground()

    assert (
        current.program.canonical_signature() == reference.program.canonical_signature()
    ), "incremental grounding diverged from from-scratch (canonical signature)"
    # Bit-for-bit: identical atom and clause emission order (and therefore
    # identical float summation order for every downstream objective).
    assert [str(atom) for atom in current.program.atoms] == [
        str(atom) for atom in reference.program.atoms
    ]
    assert [str(clause) for clause in current.program.clauses] == [
        str(clause) for clause in reference.program.clauses
    ]
    assert current.rounds == reference.rounds
    # Firings and violations by structure (statement keys).  Fact *objects*
    # may differ in confidence only: the incremental engine reports the
    # match-time snapshot, the from-scratch engine the current working copy.
    assert [
        (f.rule, tuple(b.statement_key for b in f.body), f.head.statement_key)
        for f in current.firings
    ] == [
        (f.rule, tuple(b.statement_key for b in f.body), f.head.statement_key)
        for f in reference.firings
    ]
    assert [
        (v.constraint, tuple(fact.statement_key for fact in v.facts)) for v in current.violations
    ] == [
        (v.constraint, tuple(fact.statement_key for fact in v.facts)) for v in reference.violations
    ]
    return current, reference


def random_sports_graph(seed: int, facts: int = 80) -> TemporalKnowledgeGraph:
    """A random UTKG over the sports schema (dense enough for conflicts)."""
    rng = random.Random(seed)
    players = [f"Player{index}" for index in range(facts // 6)]
    teams = [f"Team{index}" for index in range(4)]
    graph = TemporalKnowledgeGraph(name=f"random-{seed}")
    for _ in range(facts):
        player = rng.choice(players)
        kind = rng.random()
        start = rng.randint(1950, 2010)
        end = start + rng.randint(0, 12)
        confidence = round(rng.uniform(0.3, 0.99), 2)
        if kind < 0.5:
            graph.add((player, "playsFor", rng.choice(teams), (start, end), confidence))
        elif kind < 0.75:
            graph.add((player, "coach", rng.choice(teams), (start, end), confidence))
        else:
            birth = rng.randint(1930, 1995)
            graph.add((player, "birthDate", str(birth), (birth, birth), confidence))
    return graph


def random_fact(rng: random.Random) -> tuple:
    start = rng.randint(1950, 2010)
    return (
        f"Player{rng.randint(0, 12)}",
        rng.choice(["playsFor", "coach"]),
        f"Team{rng.randint(0, 3)}",
        (start, start + rng.randint(0, 12)),
        round(rng.uniform(0.3, 0.99), 2),
    )


# --------------------------------------------------------------------------- #
# Randomized edit streams (the headline differential)
# --------------------------------------------------------------------------- #
class TestRandomEditStreams:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_add_remove_sequences(self, seed, audited_seed):
        seed = audited_seed(seed)
        rng = random.Random(100 + seed)
        graph = random_sports_graph(seed)
        rules = running_example_rules()
        constraints = running_example_constraints()
        incremental = IncrementalGrounder(graph, rules=rules, constraints=constraints)
        replica = graph.copy(name=graph.name)
        removed_pool: list = []

        assert_state_matches(incremental, replica, rules, constraints)
        for _ in range(10):
            adds, removes = [], []
            for _ in range(rng.randint(1, 4)):
                roll = rng.random()
                facts = replica.facts()
                if roll < 0.4 and facts:
                    victim = rng.choice(facts)
                    removes.append(victim)
                    removed_pool.append(victim)
                elif roll < 0.6 and removed_pool:
                    adds.append(removed_pool.pop())  # re-add a retracted fact
                elif roll < 0.8 and facts:
                    # Confidence bump on an existing statement.
                    fact = rng.choice(facts)
                    adds.append(fact.with_confidence(min(0.99, fact.confidence + 0.05)))
                else:
                    adds.append(make_fact(*random_fact(rng)))
            incremental.apply(adds=adds, removes=removes)
            for fact in removes:
                replica.remove(fact)
            for fact in adds:
                replica.add(fact)
            assert_state_matches(incremental, replica, rules, constraints)

    def test_sports_pack_edit_stream(self, audited_seed):
        seed = audited_seed(42)
        rng = random.Random(seed)
        graph = random_sports_graph(9, facts=100)
        pack = sports_pack()
        incremental = IncrementalGrounder(graph, rules=pack.rules, constraints=pack.constraints)
        replica = graph.copy(name=graph.name)
        for step in range(6):
            facts = replica.facts()
            removes = [facts[rng.randrange(len(facts))]]
            adds = [make_fact(*random_fact(rng))]
            incremental.apply(adds=adds, removes=removes)
            replica.remove(removes[0])
            replica.add(adds[0])
            assert_state_matches(incremental, replica, pack.rules, pack.constraints)


# --------------------------------------------------------------------------- #
# Retraction semantics (support sets, cascades, status flips)
# --------------------------------------------------------------------------- #
def chain_rules(predicates):
    return [
        RuleBuilder(f"chain{index}")
        .body(quad("x", source, "y", "t"))
        .head(quad("x", target, "y", "t"))
        .weight(1.2)
        .build()
        for index, (source, target) in enumerate(zip(predicates, predicates[1:]))
    ]


class TestRetraction:
    def test_cascading_retraction_through_rule_chain(self):
        """Removing the base fact must retract every downstream derivation."""
        predicates = ["hopA0", "hopA1", "hopA2", "hopA3"]
        rules = chain_rules(predicates)
        graph = TemporalKnowledgeGraph(name="chain")
        base = graph.add(("X", "hopA0", "Y", (2000, 2001), 0.9))
        graph.add(("X", "unrelated", "Z", (2000, 2001), 0.8))

        incremental = IncrementalGrounder(graph, rules=rules, max_rounds=5)
        replica = graph.copy(name=graph.name)
        current, _ = assert_state_matches(incremental, replica, rules, (), max_rounds=5)
        assert len(current.firings) == 3  # p0→p1→p2→p3

        incremental.apply(removes=[base])
        replica.remove(base)
        current, _ = assert_state_matches(incremental, replica, rules, (), max_rounds=5)
        assert current.firings == []
        assert incremental.state_summary()["firings"] == 0
        assert incremental.state_summary()["working_facts"] == len(replica)

        # Re-adding the base rebuilds the cascade bit-for-bit.
        incremental.apply(adds=[base])
        replica.add(base)
        current, _ = assert_state_matches(incremental, replica, rules, (), max_rounds=5)
        assert len(current.firings) == 3

    def test_evidence_to_derived_status_flip(self):
        """Removing evidence that stays derivable flips the atom to derived."""
        rules = chain_rules(["hopA0", "hopA1"])
        graph = TemporalKnowledgeGraph(name="flip")
        graph.add(("X", "hopA0", "Y", (2000, 2001), 0.9))
        derived_as_evidence = make_fact("X", "hopA1", "Y", (2000, 2001), 0.8)
        graph.add(derived_as_evidence)

        incremental = IncrementalGrounder(graph, rules=rules)
        replica = graph.copy(name=graph.name)
        current, _ = assert_state_matches(incremental, replica, rules, ())
        atom = current.program.atom_for(derived_as_evidence)
        assert atom is not None and atom.is_evidence

        incremental.apply(removes=[derived_as_evidence])
        replica.remove(derived_as_evidence)
        current, _ = assert_state_matches(incremental, replica, rules, ())
        atom = current.program.atom_for(derived_as_evidence)
        assert atom is not None and not atom.is_evidence
        assert atom.derived_by == "chain0"

    def test_violation_retracted_with_supporting_derivation(self):
        """A conflict involving a derived fact dies with its support."""
        rules = chain_rules(["playsFor", "coach"])
        constraints = running_example_constraints()
        graph = TemporalKnowledgeGraph(name="derived-conflict")
        base = graph.add(("CR", "playsFor", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Napoli", (2001, 2003), 0.6))

        incremental = IncrementalGrounder(graph, rules=rules, constraints=constraints)
        replica = graph.copy(name=graph.name)
        current, _ = assert_state_matches(incremental, replica, rules, constraints)
        assert current.violations  # derived coach Chelsea vs coach Napoli

        incremental.apply(removes=[base])
        replica.remove(base)
        current, _ = assert_state_matches(incremental, replica, rules, constraints)
        assert incremental.state_summary()["firings"] == 0



class TestEditValidation:
    def test_malformed_edit_leaves_state_untouched(self):
        """A bad fact in an edit raises before any state is mutated."""
        from repro.errors import InvalidFactError

        graph = ranieri_graph()
        rules = running_example_rules()
        constraints = running_example_constraints()
        incremental = IncrementalGrounder(graph, rules=rules, constraints=constraints)
        good = make_fact("CR", "coach", "Leicester", (2015, 2016), 0.97)
        with pytest.raises(InvalidFactError):
            incremental.apply(adds=[good, ("not", "a", "fact")])
        with pytest.raises(InvalidFactError):
            incremental.apply(removes=[good, object()])
        # Neither the graph nor the match state absorbed the partial edit.
        assert good not in incremental.graph
        assert_state_matches(incremental, graph.copy(), rules, constraints)


# --------------------------------------------------------------------------- #
# max_rounds truncation (the superset-state emission filter)
# --------------------------------------------------------------------------- #
class TestRoundTruncation:
    def test_truncated_chain_matches_from_scratch(self):
        predicates = [f"hopB{index}" for index in range(7)]
        rules = chain_rules(predicates)
        graph = TemporalKnowledgeGraph(name="deep-chain")
        graph.add(("X", "hopB0", "Y", (2000, 2001), 0.9))

        incremental = IncrementalGrounder(graph, rules=rules, max_rounds=3)
        replica = graph.copy(name=graph.name)
        current, _ = assert_state_matches(incremental, replica, rules, (), max_rounds=3)
        # Emission truncates at 3 layers, but the maintained state holds the
        # whole fix point (6 firings).
        assert len(current.firings) == 3
        assert incremental.state_summary()["firings"] == 6

    def test_shortcut_pulls_deep_firings_into_bound(self):
        """New evidence shortening a derivation revives truncated firings."""
        predicates = [f"hopB{index}" for index in range(7)]
        rules = chain_rules(predicates)
        graph = TemporalKnowledgeGraph(name="shortcut")
        graph.add(("X", "hopB0", "Y", (2000, 2001), 0.9))

        incremental = IncrementalGrounder(graph, rules=rules, max_rounds=3)
        replica = graph.copy(name=graph.name)
        assert_state_matches(incremental, replica, rules, (), max_rounds=3)

        shortcut = make_fact("X", "hopB3", "Y", (2000, 2001), 0.8)
        incremental.apply(adds=[shortcut])
        replica.add(shortcut)
        current, _ = assert_state_matches(incremental, replica, rules, (), max_rounds=3)
        # p3 is now evidence, so p4/p5/p6 derive within the bound again.
        assert len(current.firings) == 6

    def test_unsaturated_rule_set_degrades_correctly(self):
        """Chains outrunning fixpoint_rounds fall back to exact re-grounding."""
        predicates = [f"hopC{index}" for index in range(6)]
        rules = chain_rules(predicates)
        graph = TemporalKnowledgeGraph(name="unsaturated")
        graph.add(("X", "hopC0", "Y", (2000, 2001), 0.9))
        incremental = IncrementalGrounder(graph, rules=rules, max_rounds=2, fixpoint_rounds=2)
        assert not incremental.saturated
        replica = graph.copy(name=graph.name)
        assert_state_matches(incremental, replica, rules, (), max_rounds=2)
        fact = make_fact("X", "hopC2", "Y", (2010, 2011), 0.7)
        incremental.apply(adds=[fact])
        replica.add(fact)
        assert_state_matches(incremental, replica, rules, (), max_rounds=2)


# --------------------------------------------------------------------------- #
# Session-level equivalence (objectives, assignments, cache correctness)
# --------------------------------------------------------------------------- #
class TestSessionEquivalence:
    @pytest.mark.parametrize("solver", ["nrockit", "npsl"])
    def test_session_matches_decomposed_resolve(self, solver):
        rng = random.Random(7)
        graph = random_sports_graph(21, facts=70)
        pack = sports_pack()
        system = TeCoRe(
            rules=list(pack.rules),
            constraints=list(pack.constraints),
            solver=solver,
            decompose=True,
        )
        session = system.session(graph)
        replica = graph.copy(name=graph.name)
        assert session.result.solution.assignment == system.resolve(replica).solution.assignment

        removed_pool: list = []
        for _ in range(4):
            facts = replica.facts()
            removes = [rng.choice(facts)]
            adds = [make_fact(*random_fact(rng))]
            if removed_pool and rng.random() < 0.5:
                adds.append(removed_pool.pop())
            removed_pool.append(removes[0])
            result = session.apply(adds=adds, removes=removes)
            replica.remove(removes[0])
            for fact in adds:
                replica.add(fact)
            reference = system.resolve(replica.copy(name=replica.name))
            assert result.solution.assignment == reference.solution.assignment
            assert result.objective == reference.objective
            assert {f.statement_key for f in result.removed_facts} == {
                f.statement_key for f in reference.removed_facts
            }

    def test_session_objective_matches_monolithic_exact(self):
        """For the exact ILP back-end the merged objective equals monolithic."""
        graph = random_sports_graph(33, facts=60)
        pack = sports_pack()
        decomposed = TeCoRe(
            rules=list(pack.rules), constraints=list(pack.constraints),
            solver="nrockit", decompose=True,
        )
        monolithic = decomposed.with_solver("nrockit")
        session = decomposed.session(graph)
        assert session.result.objective == monolithic.resolve(graph.copy()).objective

    def test_incremental_engine_registered(self):
        assert GROUNDING_ENGINES["incremental"] is IncrementalGrounder
        grounder = make_grounder("incremental", ranieri_graph())
        assert isinstance(grounder, IncrementalGrounder)

    def test_tecore_incremental_engine_matches_indexed(self):
        system = TeCoRe.from_pack("running-example", solver="nrockit")
        reference = system.resolve(ranieri_extended_graph())
        incremental = TeCoRe.from_pack(
            "running-example", solver="nrockit", engine="incremental"
        ).resolve(ranieri_extended_graph())
        assert incremental.objective == reference.objective
        assert incremental.solution.assignment == reference.solution.assignment
