"""Integration tests: full pipelines across modules.

These exercise the complete workflow the demo walks through — load a noisy
UTKG, pick rules and constraints, run MAP inference with both reasoner
families, compare against baselines, and serialise the results — on
deterministic synthetic datasets.
"""

import pytest

from repro import TeCoRe, render_report
from repro.baselines import GreedyResolver, StaticResolver
from repro.core import render_comparison
from repro.datasets import FootballDBConfig, WikidataConfig, generate_footballdb, generate_wikidata
from repro.kg.io import load_graph, save_graph
from repro.logic import biography_pack, find_conflicts, sports_pack
from repro.metrics import assignment_agreement, jaccard, repair_quality


@pytest.fixture(scope="module")
def noisy_football():
    return generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.5, seed=11))


@pytest.fixture(scope="module")
def football_systems():
    return {
        "nrockit": TeCoRe.from_pack("sports", solver="nrockit"),
        "npsl": TeCoRe.from_pack("sports", solver="npsl"),
    }


class TestNoisyFootballPipeline:
    def test_both_solvers_repair_most_noise(self, noisy_football, football_systems):
        for name, system in football_systems.items():
            result = system.resolve(noisy_football.graph)
            quality = repair_quality(result.removed_facts, noisy_football.noise_facts)
            assert quality.recall > 0.7, name
            assert quality.precision > 0.7, name

    def test_result_graph_is_conflict_free(self, noisy_football, football_systems):
        constraints = sports_pack().constraints
        for system in football_systems.values():
            result = system.resolve(noisy_football.graph)
            assert find_conflicts(result.consistent_graph, constraints) == []

    def test_mln_and_psl_agree_on_most_facts(self, noisy_football, football_systems):
        mln = football_systems["nrockit"].resolve(noisy_football.graph)
        psl = football_systems["npsl"].resolve(noisy_football.graph)
        # Compare the decisions on *evidence* facts (keep/remove); derived atoms
        # with near-zero weight may legitimately differ between the exact ILP
        # state and the rounded continuous state.
        program = football_systems["nrockit"].translate(noisy_football.graph).program
        evidence_indexes = [atom.index for atom in program.evidence_atoms()]
        mln_evidence = [mln.solution.assignment[i] for i in evidence_indexes]
        psl_evidence = [psl.solution.assignment[i] for i in evidence_indexes]
        agreement = assignment_agreement(mln_evidence, psl_evidence)
        assert agreement > 0.95
        assert jaccard(mln.removed_facts, psl.removed_facts) > 0.8

    def test_map_beats_baselines_on_objective_quality(self, noisy_football, football_systems):
        constraints = sports_pack().constraints
        mln = football_systems["nrockit"].resolve(noisy_football.graph)
        greedy = GreedyResolver().resolve(noisy_football.graph, constraints)
        static = StaticResolver().resolve(noisy_football.graph, constraints)
        mln_quality = repair_quality(mln.removed_facts, noisy_football.noise_facts)
        greedy_quality = repair_quality(greedy.removed_facts, noisy_football.noise_facts)
        static_quality = repair_quality(static.removed_facts, noisy_football.noise_facts)
        assert mln_quality.f1 >= greedy_quality.f1 - 0.05
        assert mln_quality.f1 > static_quality.f1

    def test_comparison_report_renders(self, noisy_football, football_systems):
        results = [system.resolve(noisy_football.graph) for system in football_systems.values()]
        table = render_comparison(results)
        assert "nrockit" in table and "npsl" in table

    def test_full_report_renders(self, noisy_football, football_systems):
        result = football_systems["nrockit"].resolve(noisy_football.graph)
        text = render_report(result, limit=5)
        assert "TeCoRe debugging report" in text


class TestWikidataPipeline:
    def test_biography_pack_on_wikidata(self):
        dataset = generate_wikidata(WikidataConfig(scale=0.0003, noise_ratio=0.4, seed=5))
        system = TeCoRe.from_pack("biography", solver="npsl")
        result = system.resolve(dataset.graph)
        assert result.statistics.violations > 0
        assert result.statistics.removed_facts > 0
        # Soft memberOf constraint exists: violations may remain, but hard ones may not.
        remaining_hard = [
            violation
            for violation in find_conflicts(result.consistent_graph, biography_pack().constraints)
            if violation.is_hard
        ]
        assert remaining_hard == []


class TestSerialisationRoundTrip:
    def test_resolve_after_file_round_trip(self, tmp_path, noisy_football):
        path = tmp_path / "football.csv"
        save_graph(noisy_football.graph, path)
        reloaded = load_graph(path)
        assert len(reloaded) == len(noisy_football.graph)
        result = TeCoRe.from_pack("sports", solver="npsl").resolve(reloaded)
        assert result.statistics.removed_facts > 0

    def test_consistent_subset_can_be_saved(self, tmp_path, noisy_football, football_systems):
        result = football_systems["nrockit"].resolve(noisy_football.graph)
        path = tmp_path / "consistent.json"
        save_graph(result.consistent_graph, path)
        assert len(load_graph(path)) == len(result.consistent_graph)
