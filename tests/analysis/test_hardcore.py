"""Pass 4: hard-conflict analysis — E401/W402, purely static.

The acceptance property here is that the PR-4 ``repair_hard`` ping-pong
class is flagged *before* any grounding: the tests poison the grounder and
solver entry points, so an analyzer that reached for either would fail.
"""

from __future__ import annotations

import pytest

import repro.logic.vectorized as vectorized
import repro.mln as mln

from analysis_helpers import codes_of, lint

PINGPONG = """\
keepCoach: quad(x, coach, y, t) -> quad(x, headCoach, y, t) w=inf

noHead: quad(x, headCoach, y, t) & quad(x, coach, y, t2) & equals(t, t2) -> before(t, t2)
"""


@pytest.fixture
def no_grounder_no_solver(monkeypatch):
    def _poisoned(*_args, **_kwargs):  # pragma: no cover - must never run
        raise AssertionError("static analysis must not ground or solve")

    monkeypatch.setattr(vectorized.VectorizedGrounder, "__init__", _poisoned)
    monkeypatch.setattr(mln, "solve_map", _poisoned)


class TestInfeasibleHardCore:
    def test_e401_flags_the_pingpong_class_statically(self, no_grounder_no_solver):
        report = lint(PINGPONG)
        flagged = [f for f in report if f.code == "E401"]
        assert len(flagged) == 1
        assert flagged[0].statement == "keepCoach"
        assert flagged[0].span is not None
        assert "soften" in flagged[0].hint

    def test_e401_requires_both_sides_hard(self):
        soft_rule = PINGPONG.replace("w=inf", "w=2.0")
        assert "E401" not in codes_of(lint(soft_rule))

    def test_e401_not_raised_when_the_constraint_needs_outside_facts(self):
        # The constraint's second atom (playsFor) cannot be supplied by the
        # rule's own firing, so infeasibility is not a static certainty.
        program = """\
keepCoach: quad(x, coach, y, t) -> quad(x, headCoach, y, t) w=inf

ordered: quad(x, headCoach, y, t) & quad(x, playsFor, y, t2) -> before(t2, t)
"""
        report = lint(program)
        assert "E401" not in codes_of(report)
        # ...but the opposite-polarity coupling itself is still reported.
        assert "W402" in codes_of(report)


class TestHardCoupling:
    def test_w402_hard_rule_feeding_hard_constraint(self):
        program = """\
promote: quad(x, assistant, y, t) -> quad(x, headCoach, y, t) w=inf

oneHead: quad(x, headCoach, y, t) & quad(z, headCoach, y, t2) & x != z -> disjoint(t, t2)
"""
        report = lint(program)
        assert "W402" in codes_of(report)

    def test_w402_counts_variable_predicates_conservatively(self):
        program = """\
promote: quad(x, assistant, y, t) -> quad(x, headCoach, y, t) w=inf

generic: quad(x, p, y, t) & quad(z, p, y, t2) & x != z -> disjoint(t, t2)
"""
        assert "W402" in codes_of(lint(program))

    def test_no_coupling_between_soft_statements(self):
        program = """\
promote: quad(x, assistant, y, t) -> quad(x, headCoach, y, t) w=1.5

oneHead: quad(x, headCoach, y, t) & quad(z, headCoach, y, t2) & x != z -> disjoint(t, t2)
"""
        report = lint(program)
        assert not {"E401", "W402"} & set(codes_of(report))

    def test_w402_suppressed_when_e401_fires_for_the_pair(self):
        report = lint(PINGPONG)
        assert "W402" not in codes_of(report)
