"""The finding model: stable codes, severity families, rendering, JSON."""

from __future__ import annotations

import re

from repro.analysis import DIAGNOSTICS, Finding, LintReport, Severity
from repro.logic.parser import SourceSpan

_LETTER_SEVERITY = {"E": Severity.ERROR, "W": Severity.WARNING, "I": Severity.INFO}


class TestCatalogue:
    def test_codes_follow_the_letter_plus_three_digits_contract(self):
        for code in DIAGNOSTICS:
            assert re.fullmatch(r"[EWI]\d{3}", code), code

    def test_severity_matches_the_code_letter(self):
        for code, diagnostic in DIAGNOSTICS.items():
            assert diagnostic.severity is _LETTER_SEVERITY[code[0]], code

    def test_every_documented_pass_family_is_present(self):
        families = {code[1] for code in DIAGNOSTICS}
        assert families == {"0", "1", "2", "3", "4", "5", "6"}

    def test_titles_and_descriptions_are_non_empty(self):
        for diagnostic in DIAGNOSTICS.values():
            assert diagnostic.title
            assert diagnostic.description


class TestFinding:
    def test_render_includes_location_code_and_hint(self):
        finding = Finding(
            code="E101",
            message="head variable(s) z do not appear in the body",
            statement="f9",
            span=SourceSpan(3, 5, 3, 20),
            source="prog.dl",
            hint="bind z in the body",
        )
        text = finding.render()
        assert "prog.dl:3:5" in text
        assert "error E101 [f9]" in text
        assert "hint: bind z" in text

    def test_render_without_span_or_source(self):
        finding = Finding(code="W501", message="dup", statement="a")
        assert finding.render() == "warning W501 [a]: dup"

    def test_to_dict_span_shape(self):
        finding = Finding(code="E301", message="dead", span=SourceSpan(2, 1, 2, 9), source="x.dl")
        payload = finding.to_dict()
        assert payload["span"] == {
            "line": 2,
            "column": 1,
            "end_line": 2,
            "end_column": 9,
        }
        assert payload["severity"] == "error"
        assert payload["title"] == DIAGNOSTICS["E301"].title


class TestLintReport:
    def _report(self) -> LintReport:
        return LintReport(
            findings=[
                Finding(code="I105", message="singleton"),
                Finding(code="W501", message="dup"),
                Finding(code="E101", message="unsafe"),
            ]
        )

    def test_severity_rollups(self):
        report = self._report()
        assert [f.code for f in report.errors] == ["E101"]
        assert [f.code for f in report.warnings] == ["W501"]
        assert [f.code for f in report.infos] == ["I105"]

    def test_ok_gating(self):
        report = self._report()
        assert not report.ok()
        warnings_only = LintReport(findings=report.warnings + report.infos)
        assert warnings_only.ok()
        assert not warnings_only.ok(strict=True)
        infos_only = LintReport(findings=report.infos)
        assert infos_only.ok(strict=True)  # infos never gate

    def test_sorted_orders_by_position_then_severity(self):
        report = LintReport(
            findings=[
                Finding(code="I105", message="late", span=SourceSpan(9, 1, 9, 2)),
                Finding(code="W501", message="early", span=SourceSpan(1, 1, 1, 2)),
                Finding(code="E101", message="early", span=SourceSpan(1, 1, 1, 2)),
            ]
        )
        assert report.sorted().codes() == ["E101", "W501", "I105"]

    def test_to_dict_is_version_1_with_summary(self):
        payload = self._report().to_dict()
        assert payload["version"] == 1
        assert payload["summary"] == {
            "errors": 1,
            "warnings": 1,
            "infos": 1,
            "ok": False,
            "ok_strict": False,
        }
        assert len(payload["findings"]) == 3

    def test_render_ends_with_the_summary_line(self):
        assert self._report().render().endswith("1 error(s), 1 warning(s), 1 info(s)")
