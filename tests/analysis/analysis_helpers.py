"""Plain-function helpers shared by the analyzer tests.

Kept out of ``conftest.py`` so test modules can import them directly
(pytest puts each test's directory on ``sys.path`` in the packageless
layout this suite uses).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_text

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint(text: str, graph=None):
    """Analyze inline program text and return the (sorted) report."""
    return analyze_text(text, source="<test>", graph=graph)


def codes_of(report) -> list[str]:
    return report.codes()
