"""Pass 1: safety / range restriction, including the text-inexpressible codes.

E103 (empty body) and E104 (trivial denial) cannot be written as program
text — the parser and statement validation reject them — so those cases
build :class:`~repro.analysis.Unit` values directly, which is exactly how
they can reach the analyzer through the programmatic API.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import analyze_units, unit_from_raw
from repro.analysis.safety import check_safety
from repro.logic.parser import parse_raw_statement

from analysis_helpers import codes_of, lint


def _unit(text: str):
    return unit_from_raw(parse_raw_statement(text))


class TestUnsafeVariables:
    def test_e101_head_variable_not_in_body(self):
        report = lint("r: quad(x, p, y, t) -> quad(x, p, z, t) w=1.0")
        assert "E101" in codes_of(report)

    def test_e101_head_interval_argument_not_in_body(self):
        report = lint("r: quad(x, p, y, t) -> quad(x, p, y, intersection(t, t9)) w=1.0")
        assert "E101" in codes_of(report)

    def test_e102_condition_over_unbound_variable(self):
        report = lint("c: quad(x, p, y, t) & quad(x, p, z, t2) & before(t, t9) -> y = z")
        assert "E102" in codes_of(report)

    def test_safe_rule_is_clean(self):
        report = lint("r: quad(x, p, y, t) -> quad(y, p, x, t) w=1.0")
        assert not [f for f in report if f.code.startswith("E1")]


class TestStructuralCodes:
    def test_e103_empty_body(self):
        unit = dataclasses.replace(_unit("r: quad(x, p, y, t) -> quad(y, p, x, t) w=1"), body=())
        assert check_safety(unit).codes() == ["E103"]

    def test_e104_trivial_denial(self):
        base = _unit("c: quad(x, p, y, t) & quad(x, q, y, t2) -> before(t, t2)")
        unit = dataclasses.replace(base, body=base.body[:1], conditions=(), head_conditions=())
        assert "E104" in check_safety(unit).codes()

    def test_two_atom_denial_is_not_e104(self):
        unit = dataclasses.replace(
            _unit("c: quad(x, p, y, t) & quad(x, q, y, t2) -> before(t, t2)"),
            head_conditions=(),
        )
        assert "E104" not in check_safety(unit).codes()


class TestSingletons:
    def test_i105_flags_each_singleton_once(self):
        report = lint("c: quad(x, playsFor, y, t) & quad(x, coach, z, t2) -> before(t, t2)")
        flagged = [f for f in report if f.code == "I105"]
        assert sorted(f.message.split()[1] for f in flagged) == ["y", "z"]

    def test_i105_skips_parser_generated_interval_variables(self):
        # Triple-style atoms get a synthetic `_t…` interval variable.
        report = lint("r: triple(x, p, y) -> triple(y, p, x) w=1.0")
        assert "I105" not in codes_of(report)

    def test_i105_is_info_so_it_never_gates(self):
        report = lint("c: quad(x, playsFor, y, t) & quad(x, coach, z, t2) -> before(t, t2)")
        assert report.ok(strict=True)


class TestProgramLevel:
    def test_analyze_units_aggregates_per_statement_findings(self):
        units = (
            _unit("r: quad(x, p, y, t) -> quad(x, p, z, t) w=1.0"),
            _unit("c: quad(a, p, b, t) & quad(a, p, c, t2) & before(t, t9) -> b = c"),
        )
        report = analyze_units(units)
        assert "E101" in codes_of(report)
        assert "E102" in codes_of(report)
