"""Fixture sweep: every diagnostic fixture triggers exactly its named code.

File naming is the contract: ``<code>_<slug>.dl`` must produce a finding
with that code (``clean*.dl`` must be strict-clean).  The differential
classes then close the loop between static verdicts and runtime behaviour:
E401-flagged programs really do force the solver to delete the rule's body
evidence, and clean fixtures resolve end-to-end.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_text
from repro.core.tecore import TeCoRe
from repro.datasets import ranieri_graph
from repro.kg import TemporalKnowledgeGraph
from repro.kg.triple import make_fact
from repro.logic.parser import parse_program

from analysis_helpers import FIXTURES

_FIXTURE_FILES = sorted(FIXTURES.glob("*.dl"))

#: Fixtures whose diagnostic needs a loaded graph to fire.
_NEEDS_GRAPH = {"w205_unknown_predicate"}


def _expected_code(path: Path) -> str | None:
    stem = path.stem
    if stem.startswith("clean"):
        return None
    return stem.split("_", 1)[0].upper()


def _analyze(path: Path):
    graph = ranieri_graph() if path.stem in _NEEDS_GRAPH else None
    return analyze_text(path.read_text(), source=path.name, graph=graph)


def test_the_fixture_directory_is_populated():
    assert len(_FIXTURE_FILES) >= 20
    covered = {_expected_code(path) for path in _FIXTURE_FILES} - {None}
    # One fixture per text-expressible diagnostic; programmatic-only codes
    # (E103/E104, W602/W603, E403, I605) are covered by the pass tests and
    # documented in fixtures/README.md.
    assert {
        "E001", "E101", "E102", "I105", "E201", "E202", "E203", "E204",
        "W205", "E301", "W302", "W303", "I304", "E401", "W402", "W501",
        "W502", "W601", "W604",
    } <= covered


@pytest.mark.parametrize("path", _FIXTURE_FILES, ids=[path.stem for path in _FIXTURE_FILES])
def test_each_fixture_matches_its_filename(path: Path):
    report = _analyze(path)
    expected = _expected_code(path)
    if expected is None:
        assert report.ok(strict=True), report.render()
    else:
        assert expected in report.codes(), report.render()


@pytest.mark.parametrize("path", _FIXTURE_FILES, ids=[path.stem for path in _FIXTURE_FILES])
def test_findings_carry_spans_and_statements(path: Path):
    for finding in _analyze(path):
        assert finding.source == path.name
        assert finding.span is not None, finding.render()


class TestStaticVerdictsMatchRuntime:
    def test_e401_program_forces_body_evidence_deletion(self):
        """The E401 class: solvable only by deleting the rule's own fuel."""
        text = (FIXTURES / "e401_infeasible_hard_core.dl").read_text()
        assert "E401" in analyze_text(text).codes()
        parsed = parse_program(text)
        system = TeCoRe(rules=tuple(parsed.rules), constraints=tuple(parsed.constraints))
        graph = TemporalKnowledgeGraph()
        fact = make_fact("Ranieri", "coach", "Leicester", (2015, 2017), 0.9)
        graph.add(fact)
        result = system.resolve(graph)
        # Every body-evidence fact is deleted — the only escape from the
        # statically infeasible hard core.
        assert fact in result.removed_facts
        assert len(result.consistent_graph) == 0

    def test_dead_rule_fixture_never_fires(self):
        text = (FIXTURES / "e301_dead_rule.dl").read_text()
        assert "E301" in analyze_text(text).codes()
        parsed = parse_program(text)
        system = TeCoRe(rules=tuple(parsed.rules), constraints=tuple(parsed.constraints))
        graph = TemporalKnowledgeGraph()
        graph.add(make_fact("A", "playsFor", "B", (1, 5), 0.9))
        graph.add(make_fact("A", "worksFor", "B", (2, 6), 0.9))
        result = system.resolve(graph)
        assert not result.inferred_facts  # the dead rule derived nothing

    def test_clean_fixture_resolves_end_to_end(self):
        text = (FIXTURES / "clean.dl").read_text()
        report = analyze_text(text)
        assert report.ok(strict=True), report.render()
        parsed = parse_program(text)
        system = TeCoRe(
            rules=tuple(parsed.rules),
            constraints=tuple(parsed.constraints),
            lint="strict",
        )
        result = system.resolve(ranieri_graph())
        assert len(result.consistent_graph) > 0
