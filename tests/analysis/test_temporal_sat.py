"""Pass 3: point-algebra satisfiability over body/head interval conditions."""

from __future__ import annotations

from analysis_helpers import codes_of, lint


class TestDeadBodies:
    def test_e301_contradictory_allen_conditions(self):
        report = lint(
            "deadRule: quad(x, playsFor, y, t) & quad(x, worksFor, y, t2) "
            "& before(t, t2) & before(t2, t) -> quad(x, type, Weird, t) w=2.0"
        )
        flagged = [f for f in report if f.code == "E301"]
        assert len(flagged) == 1
        assert flagged[0].span is not None  # anchored without running anything

    def test_e301_transitive_contradiction_through_a_chain(self):
        # t < t2, t2 < t3, t3 < t — only the closure sees the cycle.
        report = lint(
            "r: quad(x, a1, y, t) & quad(x, a2, y, t2) & quad(x, a3, y, t3) "
            "& before(t, t2) & before(t2, t3) & before(t3, t) "
            "-> quad(x, type, Weird, t) w=1.0"
        )
        assert "E301" in codes_of(report)

    def test_e301_statically_false_equality(self):
        report = lint("r: quad(x, bornIn, y, t) & x != x -> quad(x, type, Roman, t) w=1.0")
        assert "E301" in codes_of(report)

    def test_satisfiable_conditions_are_clean(self):
        report = lint(
            "r: quad(x, a1, y, t) & quad(x, a2, y, t2) & before(t, t2) "
            "& duration(t) >= 3 -> quad(x, type, Ok, t) w=1.0"
        )
        assert "E301" not in codes_of(report)

    def test_mixed_comparison_and_allen_contradiction(self):
        # end(t) < 1990 together with start(t2) > 2000 and t2 before t.
        report = lint(
            "r: quad(x, a1, y, t) & quad(x, a2, y, t2) & end(t) < 1990 "
            "& start(t2) > 2000 & before(t2, t) -> quad(x, type, Weird, t) w=1.0"
        )
        assert "E301" in codes_of(report)


class TestConstraintHeads:
    def test_w302_tautological_constraint(self):
        report = lint(
            "c: quad(x, a1, y, t) & quad(x, a2, y, t2) & before(t, t2) " "-> before(t, t2)"
        )
        assert "W302" in codes_of(report)

    def test_w303_denial_in_disguise(self):
        report = lint(
            "c: quad(x, a1, y, t) & quad(x, a2, y, t2) & before(t, t2) " "-> before(t2, t)"
        )
        flagged = [f for f in report if f.code == "W303"]
        assert len(flagged) == 1
        assert "denial" in flagged[0].hint

    def test_plain_refutable_constraint_is_clean(self):
        report = lint("c: quad(x, birthDate, b, t) & quad(x, deathDate, d, t2) " "-> before(t, t2)")
        assert not {"W302", "W303"} & set(codes_of(report))


class TestRedundancy:
    def test_i304_condition_entailed_by_the_others(self):
        report = lint(
            "r: quad(x, a1, y, t) & quad(x, a2, y, t2) & quad(x, a3, y, t3) "
            "& before(t, t2) & before(t2, t3) & before(t, t3) "
            "-> quad(x, type, Ok, t) w=1.0"
        )
        flagged = [f for f in report if f.code == "I304"]
        assert len(flagged) == 1
        assert "before(t, t3)" in flagged[0].message

    def test_i304_always_true_equality(self):
        report = lint("r: quad(x, a1, y, t) & x = x -> quad(x, type, Ok, t) w=1.0")
        assert "I304" in codes_of(report)

    def test_independent_conditions_are_not_redundant(self):
        report = lint(
            "r: quad(x, a1, y, t) & quad(x, a2, y, t2) & quad(x, a3, y, t3) "
            "& before(t, t2) & before(t2, t3) -> quad(x, type, Ok, t) w=1.0"
        )
        assert "I304" not in codes_of(report)
