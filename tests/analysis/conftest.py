"""Shared fixtures for the static-analyzer tests."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def fixtures_dir() -> Path:
    return Path(__file__).resolve().parent / "fixtures"
