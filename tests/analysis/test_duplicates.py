"""Pass 5: duplicates up to renaming (W501) and subsumption (W502)."""

from __future__ import annotations

from analysis_helpers import codes_of, lint


class TestDuplicates:
    def test_w501_identical_up_to_renaming(self):
        program = """\
a: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5

b: quad(s, playsFor, o, u) -> quad(s, worksFor, o, u) w=2.5
"""
        report = lint(program)
        flagged = [f for f in report if f.code == "W501"]
        assert len(flagged) == 1
        assert flagged[0].statement == "b"  # the second occurrence is flagged

    def test_different_weights_are_not_duplicates(self):
        program = """\
a: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5

b: quad(s, playsFor, o, u) -> quad(s, worksFor, o, u) w=1.0
"""
        assert "W501" not in codes_of(lint(program))

    def test_different_conditions_are_not_duplicates(self):
        program = """\
a: quad(x, playsFor, y, t) & quad(y, locatedIn, z, t2) & overlaps(t, t2)
    -> quad(x, livesIn, z, t) w=1.0

b: quad(x, playsFor, y, t) & quad(y, locatedIn, z, t2) & before(t, t2)
    -> quad(x, livesIn, z, t) w=1.0
"""
        assert "W501" not in codes_of(lint(program))

    def test_inconsistent_renaming_is_not_a_duplicate(self):
        # `b` merges the two variables `a` keeps distinct.
        program = """\
a: quad(x, knows, y, t) & quad(y, knows, z, t) -> quad(x, knows, z, t) w=1.0

b: quad(x, knows, y, t) & quad(y, knows, x, t) -> quad(x, knows, x, t) w=1.0
"""
        assert "W501" not in codes_of(lint(program))


class TestSubsumption:
    def test_w502_strictly_larger_body_same_head(self):
        program = """\
general: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.0

specific: quad(x, playsFor, y, t) & quad(x, captainOf, y, t) -> quad(x, worksFor, y, t) w=1.0
"""
        report = lint(program)
        flagged = [f for f in report if f.code == "W502"]
        assert len(flagged) == 1
        assert flagged[0].statement == "specific"

    def test_extra_conditions_on_the_general_statement_block_w502(self):
        # The general rule demands overlaps(t, t2); the specific one doesn't,
        # so its matches do NOT all fire the general rule.
        program = """\
general: quad(x, playsFor, y, t) & overlaps(t, t) -> quad(x, worksFor, y, t) w=2.0

specific: quad(x, playsFor, y, t) & quad(x, captainOf, y, t) -> quad(x, worksFor, y, t) w=1.0
"""
        assert "W502" not in codes_of(lint(program))

    def test_different_heads_block_w502(self):
        program = """\
general: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.0

specific: quad(x, playsFor, y, t) & quad(x, captainOf, y, t) -> quad(x, leads, y, t) w=1.0
"""
        assert "W502" not in codes_of(lint(program))
