"""Pass 2: sort (term-kind) conformance and known-predicate checks."""

from __future__ import annotations

from repro.analysis import analyze_text, unit_from_raw
from repro.analysis.schema import check_schema, derived_predicate_names
from repro.datasets import ranieri_graph
from repro.logic.parser import parse_raw_statement

from analysis_helpers import codes_of, lint


def _unit(text: str):
    return unit_from_raw(parse_raw_statement(text))


class TestSortClashes:
    def test_e201_entity_and_interval_positions(self):
        report = lint("r: quad(x, marriedTo, t, t) -> quad(t, marriedTo, x, t) w=1.0")
        assert "E201" in codes_of(report)

    def test_e202_allen_over_entity_variable(self):
        report = lint("c: quad(x, coach, y, t) & quad(x, coach, z, t2) & before(x, t) -> y = z")
        assert "E202" in codes_of(report)

    def test_e203_term_equality_over_interval_variable(self):
        report = lint(
            "c: quad(x, coach, y, t) & quad(x, coach, y, t2) & t != t2 " "-> before(t, t2)"
        )
        assert "E203" in codes_of(report)

    def test_e204_interval_accessor_over_entity_variable(self):
        report = lint("r: quad(x, coach, y, t) & start(x) < 1990 -> quad(x, veteran, y, t) w=1.0")
        assert "E204" in codes_of(report)

    def test_clean_temporal_conditions_pass(self):
        report = lint(
            "c: quad(x, coach, y, t) & quad(x, coach, y, t2) & duration(t) >= 3 " "-> before(t, t2)"
        )
        assert not [code for code in codes_of(report) if code.startswith("E2")]


class TestKnownPredicates:
    def test_w205_unknown_predicate_with_loaded_graph(self):
        report = analyze_text(
            "c: quad(x, fliesTo, y, t) & quad(x, coach, z, t2) -> before(t, t2)",
            graph=ranieri_graph(),
        )
        flagged = [f for f in report if f.code == "W205"]
        assert len(flagged) == 1
        assert "fliesTo" in flagged[0].message

    def test_w205_skips_program_derived_predicates(self):
        # worksFor is no graph relation but is derived by the first rule.
        report = analyze_text(
            "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5\n"
            "\n"
            "c: quad(x, worksFor, y, t) & quad(x, playsFor, y, t2) -> before(t, t2)",
            graph=ranieri_graph(),
        )
        assert "W205" not in codes_of(report)

    def test_no_w205_without_a_graph(self):
        report = lint("c: quad(x, fliesTo, y, t) & quad(x, fliesTo, z, t2) -> y = z")
        assert "W205" not in codes_of(report)

    def test_variable_predicates_are_never_unknown(self):
        unit = _unit("c: quad(x, p, y, t) & quad(x, p, z, t2) -> y = z")
        report = check_schema(unit, known_predicates={"coach"}, derived_predicates=set())
        assert "W205" not in report.codes()


class TestDerivedPredicates:
    def test_constant_head_predicates_are_collected(self):
        units = (
            _unit("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5"),
            _unit("c: quad(x, coach, y, t) & quad(x, coach, z, t2) -> y = z"),
        )
        assert derived_predicate_names(units) == {"worksFor"}
