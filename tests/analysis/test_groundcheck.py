"""E403 differential tests: flagged ⟹ every MAP solver raises.

Unit propagation is sound but incomplete, so the contract runs one way:
every program the pre-check flags must raise
:class:`~repro.errors.InfeasibleProgramError` in the real solvers, and
programs it passes that are genuinely satisfiable must solve cleanly.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_ground_program, propagate_hard_clauses
from repro.errors import InfeasibleProgramError
from repro.kg.triple import make_fact
from repro.logic.ground import ClauseKind, GroundProgram
from repro.mln import solve_map

SOLVERS = ("branch-and-bound", "maxwalksat")


def _atom(program: GroundProgram, name: str):
    return program.add_atom(make_fact(name, "p", "A", (1, 5), 0.9), is_evidence=True)


def _direct_contradiction() -> GroundProgram:
    program = GroundProgram()
    atom = _atom(program, "x")
    program.add_clause([(atom.index, True)], None, ClauseKind.CONSTRAINT, "must-be-true")
    program.add_clause([(atom.index, False)], None, ClauseKind.CONSTRAINT, "must-be-false")
    return program


def _chain_contradiction() -> GroundProgram:
    """a; a ⟹ b; b ⟹ c; ¬c — only visible after three propagation steps."""
    program = GroundProgram()
    a, b, c = (_atom(program, name) for name in "abc")
    program.add_clause([(a.index, True)], None, ClauseKind.CONSTRAINT, "assert-a")
    program.add_clause(
        [(a.index, False), (b.index, True)], None, ClauseKind.CONSTRAINT, "a-implies-b"
    )
    program.add_clause(
        [(b.index, False), (c.index, True)], None, ClauseKind.CONSTRAINT, "b-implies-c"
    )
    program.add_clause([(c.index, False)], None, ClauseKind.CONSTRAINT, "deny-c")
    return program


def _feasible() -> GroundProgram:
    program = GroundProgram()
    a, b = (_atom(program, name) for name in "ab")
    program.add_clause([(a.index, True)], None, ClauseKind.CONSTRAINT, "assert-a")
    program.add_clause(
        [(a.index, False), (b.index, True)], None, ClauseKind.CONSTRAINT, "a-implies-b"
    )
    program.add_clause([(a.index, True), (b.index, True)], 1.5, ClauseKind.RULE, "soft")
    return program


class TestPropagation:
    def test_direct_contradiction_is_flagged_with_a_trail(self):
        report = check_ground_program(_direct_contradiction())
        assert report.codes() == ["E403"]
        assert "must-be-" in report.findings[0].message

    def test_chain_contradiction_is_flagged(self):
        trail = propagate_hard_clauses(_chain_contradiction())
        assert trail is not None
        assert trail[-1] == "falsified hard clause deny-c"
        # The trail names the forcing clause of each literal in the
        # falsified clause (c was forced by b-implies-c).
        assert any("b-implies-c" in step for step in trail)

    def test_feasible_program_is_clean(self):
        assert propagate_hard_clauses(_feasible()) is None
        assert len(check_ground_program(_feasible())) == 0

    def test_soft_clauses_never_participate(self):
        program = GroundProgram()
        atom = _atom(program, "x")
        program.add_clause([(atom.index, True)], 2.0, ClauseKind.RULE, "soft-true")
        program.add_clause([(atom.index, False)], 2.0, ClauseKind.RULE, "soft-false")
        assert propagate_hard_clauses(program) is None


class TestDifferential:
    @pytest.mark.parametrize("backend", SOLVERS)
    @pytest.mark.parametrize(
        "build", (_direct_contradiction, _chain_contradiction), ids=("direct", "chain")
    )
    def test_every_flagged_program_raises_in_real_solvers(self, backend, build):
        program = build()
        assert check_ground_program(program).codes() == ["E403"]
        with pytest.raises(InfeasibleProgramError):
            solve_map(program, backend=backend)

    @pytest.mark.parametrize("backend", SOLVERS)
    def test_clean_feasible_program_solves(self, backend):
        program = _feasible()
        assert len(check_ground_program(program)) == 0
        solution = solve_map(program, backend=backend)
        assert solution.assignment[0] is True
        assert solution.assignment[1] is True
