"""Lint enforcement through the stack: translator, TeCoRe modes, serve boot."""

from __future__ import annotations

import pytest

from repro.analysis import LintReport
from repro.core.tecore import TeCoRe
from repro.core.translator import TecoreTranslator
from repro.datasets import ranieri_graph
from repro.errors import ProgramLintError
from repro.logic.parser import parse_program
from repro.serve import ResolutionService, ServerConfig

from analysis_helpers import FIXTURES

_DEAD = parse_program((FIXTURES / "e301_dead_rule.dl").read_text())


def _dead_system(**kwargs) -> TeCoRe:
    return TeCoRe(rules=list(_DEAD.rules), constraints=list(_DEAD.constraints), **kwargs)


class TestTranslatorHook:
    def test_lint_program_returns_the_full_report(self):
        translator = TecoreTranslator()
        report = translator.lint_program(_DEAD.rules, _DEAD.constraints)
        assert isinstance(report, LintReport)
        assert "E301" in report.codes()

    def test_graph_aware_lint_adds_schema_checks(self):
        parsed = parse_program("c: quad(x, fliesTo, y, t) & quad(x, coach, z, t2) -> before(t, t2)")
        translator = TecoreTranslator()
        report = translator.lint_program(parsed.rules, parsed.constraints, ranieri_graph())
        assert "W205" in report.codes()


class TestTeCoReModes:
    def test_off_is_the_default_and_never_raises(self):
        system = _dead_system()
        assert system.lint == "off"
        result = system.resolve(ranieri_graph())
        assert result is not None

    def test_strict_raises_with_the_report_attached(self):
        system = _dead_system(lint="strict")
        with pytest.raises(ProgramLintError) as excinfo:
            system.resolve(ranieri_graph())
        assert "E301" in str(excinfo.value)
        assert "E301" in excinfo.value.report.codes()

    def test_warn_emits_a_warning_and_still_resolves(self):
        system = _dead_system(lint="warn")
        with pytest.warns(UserWarning, match="E301"):
            result = system.resolve(ranieri_graph())
        assert result is not None

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="lint mode"):
            _dead_system(lint="pedantic").resolve(ranieri_graph())

    def test_clean_pack_resolves_under_strict(self):
        system = TeCoRe.from_pack("running-example", lint="strict")
        result = system.resolve(ranieri_graph())
        assert len(result.consistent_graph) > 0

    def test_lint_report_is_cached_per_program(self):
        system = _dead_system()
        assert system.lint_report() is system.lint_report()

    def test_with_solver_preserves_the_lint_mode(self):
        system = _dead_system(lint="strict").with_solver("nrockit")
        assert system.lint == "strict"


class TestServeBoot:
    def test_error_programs_are_rejected_at_boot(self):
        with pytest.raises(ProgramLintError, match="refusing to serve"):
            ResolutionService(_dead_system(), ServerConfig(batch_delay=0.001))

    def test_lint_off_boots_the_same_program(self):
        service = ResolutionService(_dead_system(), ServerConfig(batch_delay=0.001, lint="off"))
        try:
            status, payload = service.handle("GET", "/healthz", b"")
            assert status == 200
        finally:
            service.close()

    def test_clean_pack_boots_with_the_default_strict_gate(self):
        config = ServerConfig(batch_delay=0.001)
        assert config.lint == "strict"
        service = ResolutionService(TeCoRe.from_pack("running-example"), config)
        service.close()
