"""Pass 6: W6xx performance lints mirror the vectorized grounder's fallbacks.

The acceptance property: every scalar-fallback construct the fallback-parity
suite (``tests/test_vectorized_equivalence.py::TestErrorAndFallbackParity``)
exercises maps to a W-series lint — variable predicates to W601, unknown
condition classes to W602, unknown head-interval kinds to W603.  The units
here are built with the same builders those parity cases use.
"""

from __future__ import annotations

from repro.analysis import analyze_units, unit_from_constraint, unit_from_rule
from repro.analysis.performance import (
    ESTIMATE_THRESHOLD,
    VECTORIZED_INTERVAL_KINDS,
    check_performance,
)
from repro.logic import ConstraintBuilder, RuleBuilder, allen, not_equal, quad, var
from repro.logic.atom import ConditionAtom
from repro.logic.terms import Variable
from repro.logic.vectorized import VectorizedGrounder  # noqa: F401 - contract anchor
from repro.temporal.arithmetic import IntervalExpression

from analysis_helpers import codes_of, lint


class _UnknownCondition(ConditionAtom):
    """A condition class the vectorizer has never heard of (parity twin)."""

    def holds(self, substitution):  # pragma: no cover - never evaluated
        return True

    def variables(self):
        return {Variable("t")}


class TestVariablePredicate:
    def test_w601_text_program(self):
        report = lint("c: quad(x, p, y, t) & quad(x, p, z, t2) & y != z -> disjoint(t, t2)")
        assert "W601" in codes_of(report)

    def test_w601_builder_constraint_mirrors_fallback_parity(self):
        constraint = (
            ConstraintBuilder("metaConflict")
            .body(quad("x", var("p"), "y", "t"), quad("x", var("p"), "z", "t2"))
            .when(not_equal("y", "z"))
            .require(allen("disjoint", "t", "t2"))
            .build()
        )
        report = check_performance(unit_from_constraint(constraint))
        assert report.codes().count("W601") == 1  # one note per body

    def test_constant_predicates_do_not_fire_w601(self):
        report = lint(
            "c: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z " "-> disjoint(t, t2)"
        )
        assert "W601" not in codes_of(report)


class TestPerRowConditions:
    def test_w602_unknown_condition_class(self):
        rule = (
            RuleBuilder("custom")
            .body(quad("x", "playsFor", "y", "t"))
            .when(_UnknownCondition())
            .head(quad("x", "type", "LongTimer", "t"))
            .weight(1.0)
            .build()
        )
        report = check_performance(unit_from_rule(rule))
        assert "W602" in report.codes()

    def test_vectorizable_conditions_are_clean(self):
        report = lint(
            "r: quad(x, coach, y, t) & duration(t) >= 3 " "-> quad(x, headCoach, y, t) w=1.0"
        )
        assert "W602" not in codes_of(report)


class TestHeadInterval:
    def test_w603_unknown_head_interval_kind(self):
        rule = (
            RuleBuilder("strange")
            .body(quad("x", "coach", "y", "t"))
            .head(
                quad("x", "managed", "y", "t"),
                interval=IntervalExpression(kind="mystery", left="t"),
            )
            .weight(1.0)
            .build()
        )
        report = check_performance(unit_from_rule(rule))
        assert "W603" in report.codes()

    def test_all_vectorized_kinds_are_clean(self):
        for kind in sorted(VECTORIZED_INTERVAL_KINDS - {"var"}):
            rule = (
                RuleBuilder(f"via_{kind}")
                .body(quad("x", "coach", "y", "t"), quad("x", "coach", "y", "t2"))
                .head(
                    quad("x", "managed", "y", "t"),
                    interval=IntervalExpression(kind=kind, left="t", right="t2"),
                )
                .weight(1.0)
                .build()
            )
            assert "W603" not in check_performance(unit_from_rule(rule)).codes()

    def test_intersection_head_interval_from_text_is_clean(self):
        report = lint(
            "r: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t2) "
            "& overlaps(t, t2) -> quad(x, livesIn, z, intersection(t, t2)) w=1.6"
        )
        assert "W603" not in codes_of(report)


class TestCrossProduct:
    def test_w604_disconnected_body_groups(self):
        report = lint("c: quad(x, coach, y, t) & quad(a, playsFor, b, t2) -> disjoint(t, t2)")
        assert "W604" in codes_of(report)

    def test_body_conditions_connect_groups(self):
        report = lint(
            "c: quad(x, coach, y, t) & quad(a, playsFor, b, t2) & overlaps(t, t2) " "-> x = a"
        )
        assert "W604" not in codes_of(report)

    def test_head_conditions_do_not_connect_groups(self):
        # disjoint(t, t2) is only *checked* on enumerated matches; it cannot
        # shrink the cross product, so the lint still fires.
        report = lint("c: quad(x, coach, y, t) & quad(a, playsFor, b, t2) -> disjoint(t, t2)")
        assert "W604" in codes_of(report)


class TestGroundingEstimate:
    def _unit(self):
        constraint = (
            ConstraintBuilder("big")
            .body(quad("x", "coach", "y", "t"), quad("y", "locatedIn", "z", "t2"))
            .require(allen("overlaps", "t", "t2"))
            .build()
        )
        return unit_from_constraint(constraint)

    def test_i605_fires_above_the_threshold(self):
        cardinalities = {"coach": 2_000, "locatedIn": 2_000}
        report = check_performance(self._unit(), cardinalities=cardinalities)
        flagged = [f for f in report if f.code == "I605"]
        assert len(flagged) == 1
        assert "4,000,000" in flagged[0].message

    def test_i605_silent_below_the_threshold(self):
        cardinalities = {"coach": 10, "locatedIn": 10}
        assert ESTIMATE_THRESHOLD > 100
        report = check_performance(self._unit(), cardinalities=cardinalities)
        assert "I605" not in report.codes()

    def test_i605_needs_known_cardinalities(self):
        report = check_performance(self._unit(), cardinalities={"unrelated": 10**9})
        assert "I605" not in report.codes()

    def test_no_graph_means_no_estimate(self):
        report = analyze_units((self._unit(),))
        assert "I605" not in codes_of(report)
