"""The ``tecore lint`` subcommand: exit codes, JSON shape, --expect-findings."""

from __future__ import annotations

import json

from repro.cli import main

from analysis_helpers import FIXTURES

CLEAN = str(FIXTURES / "clean.dl")
DEAD_RULE = str(FIXTURES / "e301_dead_rule.dl")
SINGLETON = str(FIXTURES / "i105_singleton.dl")
CROSS_PRODUCT = str(FIXTURES / "w604_cross_product.dl")


class TestExitCodes:
    def test_clean_program_exits_zero(self, capsys):
        assert main(["lint", CLEAN, "--strict"]) == 0

    def test_errors_gate_by_default(self, capsys):
        assert main(["lint", DEAD_RULE]) == 1

    def test_warnings_gate_only_under_strict(self, capsys):
        assert main(["lint", CROSS_PRODUCT]) == 0
        assert main(["lint", CROSS_PRODUCT, "--strict"]) == 1

    def test_infos_never_gate(self, capsys):
        assert main(["lint", SINGLETON, "--strict"]) == 0

    def test_nothing_to_lint_is_an_error(self, capsys):
        assert main(["lint"]) == 1

    def test_builtin_packs_are_strict_clean(self, capsys):
        assert main(["lint", "--all-packs", "--strict"]) == 0


class TestJsonOutput:
    def test_json_shape_is_version_1(self, capsys):
        assert main(["lint", DEAD_RULE, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["errors"] >= 1
        finding = next(f for f in payload["findings"] if f["code"] == "E301")
        assert finding["severity"] == "error"
        assert {"line", "column", "end_line", "end_column"} <= set(finding["span"])
        assert finding["source"].endswith("e301_dead_rule.dl")

    def test_text_output_names_the_location(self, capsys):
        main(["lint", DEAD_RULE])
        out = capsys.readouterr().out
        assert "error E301" in out
        assert "e301_dead_rule.dl:" in out


class TestExpectFindings:
    def test_present_codes_exit_zero(self, capsys):
        assert main(["lint", DEAD_RULE, "--expect-findings", "E301"]) == 0

    def test_missing_codes_exit_one(self, capsys):
        assert main(["lint", CLEAN, "--expect-findings", "E301"]) == 1
        assert "E301" in capsys.readouterr().err

    def test_comma_separated_codes(self, capsys):
        assert (main(["lint", DEAD_RULE, SINGLETON, "--expect-findings", "E301,I105"]) == 0)

    def test_unknown_code_is_rejected(self, capsys):
        assert main(["lint", DEAD_RULE, "--expect-findings", "E999"]) == 1
        assert "E999" in capsys.readouterr().err


class TestGraphAwareLinting:
    def test_dataset_enables_unknown_predicate_check(self, capsys):
        fixture = str(FIXTURES / "w205_unknown_predicate.dl")
        assert main(["lint", fixture, "--dataset", "ranieri", "--expect-findings", "W205"]) == 0

    def test_without_a_graph_w205_stays_silent(self, capsys):
        fixture = str(FIXTURES / "w205_unknown_predicate.dl")
        assert main(["lint", fixture, "--expect-findings", "W205"]) == 1
