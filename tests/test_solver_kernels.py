"""Differential suite for the array-native solver kernels.

``GroundProgramArrays`` lowers the object ground program into CSR blocks, and
three solver kernels run on it: batched array MaxWalkSAT, ADMM over a matrix
lowered with ``PotentialMatrix.from_arrays``, and branch & bound with array
bounding.  The exact kernels must be **bit-identical** to their object
counterparts (assignment, objective, iteration counts); the stochastic one is
tolerance-pinned.  Alongside the kernels this file pins the solver-layer
bugfix sweep: the ``derived_by`` evidence-upgrade fix, the shared zero-weight
epsilon, the search-state double-subtract guard, and the ``kernel=`` plumbing
through the registry, TeCoRe, and sessions.
"""

import random

import numpy as np
import pytest
from program_generators import random_ground_program

from repro.core import (
    ARRAY_VARIANTS,
    TeCoRe,
    make_solver,
    resolve_kernel,
    solver_capabilities,
)
from repro.datasets import ranieri_extended_graph
from repro.errors import SolverNotAvailableError
from repro.kg import make_fact
from repro.logic import (
    GROUNDING_ENGINES,
    ZERO_WEIGHT_EPSILON,
    ClauseKind,
    GroundProgram,
    GroundProgramArrays,
    decompose,
    make_grounder,
    nonzero_weight,
    running_example_constraints,
    running_example_rules,
)
from repro.mln import map_inference as mln_map
from repro.psl import map_inference as psl_map

SEEDS = range(8)


def random_assignment(program, seed):
    rng = random.Random(seed)
    return [rng.random() < 0.5 for _ in range(program.num_atoms)]


# --------------------------------------------------------------------------- #
# Lowering invariants
# --------------------------------------------------------------------------- #
class TestLowering:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_csr_layout_preserves_clause_structure(self, seed):
        program = random_ground_program(seed)
        arrays = GroundProgramArrays.from_program(program)
        assert arrays.num_atoms == program.num_atoms
        assert arrays.num_clauses == program.num_clauses
        for index, clause in enumerate(program.clauses):
            atoms, signs = arrays.clause_literals(index)
            assert list(zip(atoms.tolist(), signs.tolist())) == [
                (atom, bool(sign)) for atom, sign in clause.literals
            ]
            assert arrays.weight_list[index] == clause.weight
            assert bool(arrays.is_hard[index]) == clause.is_hard
        # The flat inverse maps every literal back to its owning clause.
        assert np.array_equal(
            arrays.literal_clauses,
            np.repeat(np.arange(arrays.num_clauses), np.diff(arrays.clause_offsets)),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_objective_and_violations_match_object_path(self, seed):
        program = random_ground_program(seed)
        arrays = GroundProgramArrays.from_program(program)
        for trial in range(10):
            assignment = random_assignment(program, seed * 100 + trial)
            assert arrays.objective(assignment) == program.objective(assignment)
            expected = [
                index
                for index, clause in enumerate(program.clauses)
                if clause.is_hard
                and not any(assignment[i] == positive for i, positive in clause.literals)
            ]
            assert list(arrays.hard_violation_indices(assignment)) == expected
            assert arrays.is_feasible(assignment) == program.is_feasible(assignment)
            objective, violations = arrays.evaluate(assignment)
            assert objective == program.objective(assignment)
            assert violations == len(expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_component_labels_match_object_decomposition(self, seed):
        program = random_ground_program(seed)
        arrays = GroundProgramArrays.from_program(program)
        atom_labels, clause_labels = arrays.components
        decomposition = decompose(program)
        # Same partition: two atoms share an array label iff some object
        # component holds them both (label values may differ).
        label_of = {}
        for component in decomposition.components:
            for atom in component.atom_indices:
                label_of[atom] = min(component.atom_indices)
        for first in range(program.num_atoms):
            for second in range(first + 1, program.num_atoms):
                together = label_of.get(first) is not None and label_of.get(
                    first
                ) == label_of.get(second)
                assert (atom_labels[first] == atom_labels[second]) == together or (
                    label_of.get(first) is None and label_of.get(second) is None
                )
        # Every clause is labelled with its atoms' component.
        for index, clause in enumerate(program.clauses):
            for atom, _ in clause.literals:
                assert clause_labels[index] == atom_labels[atom]


# --------------------------------------------------------------------------- #
# Kernel equivalence
# --------------------------------------------------------------------------- #
class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_branch_and_bound_array_is_bit_identical(self, seed):
        program = random_ground_program(seed)
        object_solution = mln_map.solve_map(program, "branch-and-bound")
        array_solution = mln_map.solve_map(program, "branch-and-bound-array")
        assert array_solution.assignment == object_solution.assignment
        assert array_solution.objective == object_solution.objective
        assert array_solution.stats.iterations == object_solution.stats.iterations

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("squared", [False, True])
    def test_admm_array_is_bit_identical(self, seed, squared):
        program = random_ground_program(seed)
        object_solution = psl_map.solve_map(program, "admm", squared=squared)
        array_solution = psl_map.solve_map(program, "admm-array", squared=squared)
        assert array_solution.truth_values == object_solution.truth_values
        assert array_solution.assignment == object_solution.assignment
        assert array_solution.objective == object_solution.objective
        assert array_solution.stats.iterations == object_solution.stats.iterations

    @pytest.mark.parametrize("seed", SEEDS)
    def test_maxwalksat_array_reaches_object_quality(self, seed):
        program = random_ground_program(seed)
        object_solution = mln_map.solve_map(program, "maxwalksat", seed=0, debug=True)
        array_solution = mln_map.solve_map(program, "maxwalksat-array", seed=0, debug=True)
        assert program.is_feasible(array_solution.assignment)
        # Stochastic kernels share the search, not the RNG stream: pin the
        # achieved objective, not the assignment.
        assert array_solution.objective >= object_solution.objective * (1 - 1e-3)

    def test_array_solvers_report_array_names(self):
        assert make_solver("nrockit-bnb-array").name == "nrockit-bnb-array"
        assert make_solver("maxwalksat-array").name == "maxwalksat-array"
        assert make_solver("npsl-array").name == "npsl-admm-array"

    def test_capabilities_match_object_variants(self):
        for object_name, array_name in ARRAY_VARIANTS.items():
            assert solver_capabilities(array_name) == solver_capabilities(object_name)


# --------------------------------------------------------------------------- #
# Kernel selection plumbing
# --------------------------------------------------------------------------- #
class TestKernelSelection:
    def test_resolve_kernel_mapping(self):
        assert resolve_kernel("nrockit-bnb") == "nrockit-bnb"
        assert resolve_kernel("nrockit-bnb", "array") == "nrockit-bnb-array"
        assert resolve_kernel("maxwalksat", "array") == "maxwalksat-array"
        assert resolve_kernel("npsl", "array") == "npsl-array"
        # Solvers without an array variant fall back to the object path.
        assert resolve_kernel("nrockit", "array") == "nrockit"
        with pytest.raises(SolverNotAvailableError):
            resolve_kernel("nrockit", "simd")

    def test_branch_and_bound_rejects_unknown_kernel(self):
        from repro.mln import BranchAndBoundSolver

        with pytest.raises(ValueError):
            BranchAndBoundSolver(kernel="simd")

    def test_tecore_array_kernel_matches_object(self):
        graph = ranieri_extended_graph()
        rules = running_example_rules()
        constraints = running_example_constraints()
        object_system = TeCoRe(rules=rules, constraints=constraints, solver="nrockit-bnb")
        array_system = TeCoRe(
            rules=rules, constraints=constraints, solver="nrockit-bnb", kernel="array"
        )
        object_result = object_system.resolve(graph)
        array_result = array_system.resolve(graph)
        assert array_result.solution.objective == object_result.solution.objective
        assert array_result.solution.assignment == object_result.solution.assignment

    def test_session_array_kernel_matches_object(self):
        graph = ranieri_extended_graph()
        rules = running_example_rules()
        constraints = running_example_constraints()
        object_session = TeCoRe(
            rules=rules, constraints=constraints, solver="nrockit-bnb"
        ).session(graph)
        array_session = TeCoRe(
            rules=rules, constraints=constraints, solver="nrockit-bnb", kernel="array"
        ).session(graph)
        assert (array_session.result.solution.objective == object_session.result.solution.objective)
        fact = next(iter(graph))
        object_result = object_session.apply(removes=[fact])
        array_result = array_session.apply(removes=[fact])
        assert array_result.solution.objective == object_result.solution.objective


# --------------------------------------------------------------------------- #
# Bugfix sweep
# --------------------------------------------------------------------------- #
class TestBugfixSweep:
    def test_add_atom_upgrade_preserves_derived_by(self):
        program = GroundProgram()
        fact = make_fact("s", "p", "o", (0, 5), 0.9)
        derived = program.add_atom(fact, is_evidence=False, derived_by="rule-f1")
        assert derived.derived_by == "rule-f1"
        upgraded = program.add_atom(fact, is_evidence=True)
        assert upgraded.index == derived.index
        assert upgraded.is_evidence
        # The regression: upgrading to evidence used to drop the provenance.
        assert upgraded.derived_by == "rule-f1"
        assert program.atoms[upgraded.index].derived_by == "rule-f1"

    def test_canonical_signature_parity_across_engines(self):
        graph = ranieri_extended_graph()
        rules = running_example_rules()
        constraints = running_example_constraints()
        signatures = {}
        for engine in GROUNDING_ENGINES:
            grounder = make_grounder(
                engine, graph, rules=rules, constraints=constraints, max_rounds=5
            )
            signatures[engine] = grounder.ground().program.canonical_signature()
        assert len(set(signatures.values())) == 1, sorted(signatures)

    def test_nonzero_weight_contract(self):
        assert nonzero_weight(0.0) == ZERO_WEIGHT_EPSILON
        assert nonzero_weight(0) == ZERO_WEIGHT_EPSILON
        assert nonzero_weight(2.5) == 2.5
        assert nonzero_weight(-1.25) == -1.25
        assert nonzero_weight(None) is None  # hard clauses pass through

    def test_add_clause_applies_shared_epsilon(self):
        program = GroundProgram()
        atom = program.add_atom(make_fact("s", "p", "o", (0, 1), 0.5), is_evidence=True)
        clause = program.add_clause([(atom.index, True)], 0.0, ClauseKind.EVIDENCE, "ev")
        assert clause.weight == ZERO_WEIGHT_EPSILON

    def test_max_soft_weight_sums_soft_clauses_only(self):
        # The docstring fix: the method bounds the objective by SUMMING all
        # soft weights (every stored soft weight is positive), despite the
        # ``max_`` name.
        program = random_ground_program(0)
        soft = [clause.weight for clause in program.clauses if not clause.is_hard]
        assert program.max_soft_weight() == sum(soft)
