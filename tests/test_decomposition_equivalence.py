"""Differential suite: decomposed MAP solve versus monolithic solve.

MAP inference factorises over the connected components of the ground
program's interaction graph, so for every *exact* MLN back-end the
decomposed objective must equal the monolithic one bit-for-bit (both sides
evaluate ``program.objective`` over the same clause order).  The approximate
paths — MaxWalkSAT and the PSL relaxation — only promise closeness, pinned
here by tolerances against the exact optimum.

The randomized programs come from the seeded generator in
``tests/properties/program_generators.py``; seeds are fixed, so every run
checks the same programs.
"""

from functools import partial

import pytest
from program_generators import random_ground_program

from repro.logic import decompose
from repro.mln import map_inference as mln_map
from repro.psl import map_inference as psl_map
from repro.solvers import DecomposedSolver

SEEDS = range(10)

EXACT_MLN_BACKENDS = ["ilp", "cutting-plane", "branch-and-bound", "branch-and-bound-array"]


def programs():
    return [random_ground_program(seed) for seed in SEEDS]


@pytest.fixture(scope="module", name="suite")
def suite_fixture():
    """Generated programs plus their exact (ILP) monolithic optima."""
    generated = programs()
    optima = [mln_map.solve_map(program, "ilp").objective for program in generated]
    return list(zip(generated, optima))


class TestExactBackends:
    @pytest.mark.parametrize("backend", EXACT_MLN_BACKENDS)
    def test_decomposed_objective_is_bit_identical(self, backend, suite):
        for program, _ in suite:
            monolithic = mln_map.solve_map(program, backend)
            decomposed = mln_map.solve_map(program, backend, decompose=True)
            assert decomposed.objective == monolithic.objective
            assert program.is_feasible(decomposed.assignment)
            assert len(decomposed.assignment) == program.num_atoms

    def test_decomposed_matches_across_exact_backends(self, suite):
        for program, optimum in suite:
            for backend in EXACT_MLN_BACKENDS:
                decomposed = mln_map.solve_map(program, backend, decompose=True)
                assert decomposed.objective == pytest.approx(optimum, abs=1e-9)

    def test_parallel_jobs_match_sequential(self, suite):
        for program, _ in suite[:3]:
            sequential = mln_map.solve_map(program, "ilp", decompose=True, jobs=1)
            parallel = mln_map.solve_map(program, "ilp", decompose=True, jobs=2)
            assert parallel.objective == sequential.objective
            assert parallel.assignment == sequential.assignment

    def test_worker_pool_is_reused_across_solves(self, suite):
        with DecomposedSolver(partial(mln_map.make_solver, "ilp"), jobs=2) as solver:
            first = solver.solve(suite[0][0])
            pool = solver._pool
            assert pool is not None
            second = solver.solve(suite[1][0])
            assert solver._pool is pool
            assert first.objective == suite[0][1]
            assert second.objective == suite[1][1]
        assert solver._pool is None

    def test_merged_stats_report_components(self, suite):
        program, _ = suite[0]
        decomposition = decompose(program)
        solution = mln_map.solve_map(program, "ilp", decompose=True)
        extra = dict(solution.stats.extra)
        assert extra["components"] == decomposition.num_components
        assert extra["unconstrained_atoms"] == len(decomposition.unconstrained)
        assert solution.stats.solver == "decomposed(nrockit-ilp)"


class TestApproximateBackends:
    @pytest.mark.parametrize("backend", ["maxwalksat", "maxwalksat-array"])
    def test_maxwalksat_within_tolerance(self, backend, suite):
        for program, optimum in suite:
            monolithic = mln_map.solve_map(program, backend, seed=0)
            decomposed = mln_map.solve_map(program, backend, decompose=True, seed=0)
            assert program.is_feasible(decomposed.assignment)
            # Local search on these programs reaches the optimum; keep a thin
            # tolerance so the assertion survives flip-order changes.
            assert decomposed.objective >= optimum * (1 - 1e-3)
            assert abs(decomposed.objective - monolithic.objective) <= optimum * 1e-3

    @pytest.mark.parametrize("backend", ["admm", "admm-array", "projected-gradient"])
    def test_psl_path_within_tolerance(self, backend, suite):
        for program, optimum in suite:
            monolithic = psl_map.solve_map(program, backend)
            decomposed = psl_map.solve_map(program, backend, decompose=True)
            assert program.is_feasible(decomposed.assignment)
            # The relaxation rounds per component; empirically that lands at
            # or above the monolithic rounding, so the bound is one-sided.
            assert decomposed.objective >= 0.85 * optimum
            assert decomposed.objective >= monolithic.objective - 0.1 * optimum
            assert all(0.0 <= value <= 1.0 for value in decomposed.truth_values)
