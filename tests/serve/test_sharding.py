"""Sharded serving: hash-ring routing, the in-process worker, and recovery.

Three layers under test (see ``docs/serving.md``):

* :class:`~repro.serve.sharding.ConsistentHashRing` — deterministic session
  affinity and the rebalance property (a node change moves only that node's
  arcs, about ``1/len(nodes)`` of the key space);
* :func:`~repro.serve.worker.worker_main` driven on a plain thread over a
  pipe — the worker wire protocol without forking (resolve, snapshot
  sharing, the session ops, shard restore);
* the full front-end + forked workers stack end to end — bit-identical
  responses vs the direct resolver, and SIGKILLed workers respawned with
  their shard replayed from the WAL.
"""

import itertools
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.datasets import ranieri_extended_graph, ranieri_graph
from repro.kg.io import json_io
from repro.serve import ServerConfig, encode_result, stable_view
from repro.serve.sharding import ConsistentHashRing
from repro.serve.worker import SNAPSHOT_MISS, worker_main


def stable(payload):
    return stable_view(payload)


KEYS = [f"session-{index}" for index in range(2000)]


class TestConsistentHashRing:
    def test_lookup_is_deterministic_and_order_independent(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        owners = {key: ring.lookup(key) for key in KEYS[:200]}
        again = ConsistentHashRing(["w2", "w0", "w1"])  # construction order must not matter
        assert all(again.lookup(key) == node for key, node in owners.items())

    def test_keys_spread_over_all_nodes(self):
        nodes = ["w0", "w1", "w2", "w3"]
        ring = ConsistentHashRing(nodes)
        counts = {node: 0 for node in nodes}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        # 64 virtual points per node keep the split rough but never starved.
        assert all(count > len(KEYS) / (len(nodes) * 4) for count in counts.values())

    def test_adding_a_node_moves_only_keys_onto_it(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add("w3")
        moved = [key for key in KEYS if ring.lookup(key) != before[key]]
        assert moved, "the new node must take over some arcs"
        assert all(ring.lookup(key) == "w3" for key in moved)
        # About 1/4 of the key space; assert well under a full reshuffle.
        assert len(moved) < len(KEYS) / 2

    def test_removing_a_node_strands_only_its_keys(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove("w1")
        for key in KEYS:
            if before[key] == "w1":
                assert ring.lookup(key) in {"w0", "w2"}
            else:
                assert ring.lookup(key) == before[key]

    def test_duplicate_add_and_unknown_remove_raise(self):
        ring = ConsistentHashRing(["w0"])
        with pytest.raises(ValueError):
            ring.add("w0")
        with pytest.raises(ValueError):
            ring.remove("w9")

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ValueError):
            ConsistentHashRing().lookup("key")

    def test_replica_count_must_be_positive(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)


@pytest.fixture
def worker(system):
    """One resolver worker on a plain thread, driven over a real pipe."""
    parent, child = multiprocessing.Pipe()
    thread = threading.Thread(
        target=worker_main,
        args=(child, [], system, ServerConfig(), 0),
        kwargs={"threads": 2},
        daemon=True,
    )
    thread.start()
    counter = itertools.count()

    def call(op, payload=None):
        request_id = next(counter)
        parent.send((request_id, op, payload or {}))
        returned_id, status, response = parent.recv()
        assert returned_id == request_id
        return status, response

    yield call
    status, response = call("shutdown")
    assert (status, response) == (200, {"stopped": True})
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    parent.close()


class TestWorkerInProcess:
    def test_ping_reports_index(self, worker):
        status, payload = worker("ping")
        assert status == 200
        assert payload["index"] == 0
        assert payload["pid"] == os.getpid()  # thread mode: same process

    def test_resolve_matches_direct_resolution(self, system, worker):
        graph = ranieri_graph()
        status, payload = worker("resolve", {"document": json_io.to_dict(graph)})
        assert status == 200
        assert stable(payload) == stable(encode_result(system.resolve(graph)))

    def test_snapshot_key_round_trip(self, worker):
        document = json_io.to_dict(ranieri_graph())
        status, inline = worker("resolve", {"document": document, "snapshot_key": "snap-1"})
        assert status == 200
        # Key-only request: served from the worker's snapshot LRU.
        status, cached = worker("resolve", {"snapshot_key": "snap-1"})
        assert status == 200
        assert stable(cached) == stable(inline)
        status, stats = worker("stats")
        assert status == 200
        assert stats["snapshots"]["cached"] == 1
        assert stats["snapshots"]["hits"] == 1
        assert stats["snapshots"]["misses"] == 0

    def test_unknown_snapshot_key_answers_miss(self, worker):
        status, payload = worker("resolve", {"snapshot_key": "never-sent"})
        assert status == SNAPSHOT_MISS
        assert "snapshot" in payload["error"]
        status, _ = worker("ping")  # the worker survives the miss
        assert status == 200

    def test_session_lifecycle_over_the_pipe(self, worker):
        document = json_io.to_dict(ranieri_graph())
        status, created = worker("create", {"session_id": "s-pipe", "document": document})
        assert status == 201
        assert created["session_id"] == "s-pipe"
        edit = {
            "adds": [
                {
                    "s": "CR",
                    "p": "coach",
                    "o": "Fulham",
                    "interval": [2018, 2019],
                    "confidence": 0.7,
                }
            ]
        }
        status, edited = worker("edit", {"session_id": "s-pipe", "document": edit})
        assert status == 200
        status, read = worker("read", {"session_id": "s-pipe"})
        assert status == 200
        assert stable(read["result"]) == stable(edited["result"])
        status, deleted = worker("delete", {"session_id": "s-pipe"})
        assert status == 200
        assert deleted["deleted"] is True
        assert deleted["edits_applied"] == 1
        status, _ = worker("read", {"session_id": "s-pipe"})
        assert status == 404

    def test_restore_replays_edits_through_the_live_path(self, system, worker):
        graph = ranieri_graph()
        edit = {
            "adds": [
                {
                    "s": "CR",
                    "p": "coach",
                    "o": "Fulham",
                    "interval": [2018, 2019],
                    "confidence": 0.7,
                }
            ]
        }
        status, restored = worker(
            "restore",
            {"session_id": "s-replay", "graph": json_io.to_dict(graph), "edits": [edit]},
        )
        assert status == 200
        assert restored["edits_replayed"] == 1
        assert restored["edits_skipped"] == 0
        # The restored state answers reads exactly like a live session that
        # was created and then served the same edit.
        status, created = worker(
            "create", {"session_id": "s-live", "document": json_io.to_dict(graph)}
        )
        assert status == 201
        status, edited = worker("edit", {"session_id": "s-live", "document": edit})
        assert status == 200
        status, read = worker("read", {"session_id": "s-replay"})
        assert status == 200
        assert stable(read["result"]) == stable(edited["result"])

    def test_unknown_op_is_500(self, worker):
        status, payload = worker("frobnicate")
        assert status == 500
        assert "unknown worker op" in payload["error"]


class TestShardedEndToEnd:
    def test_healthz_reports_worker_fleet(self, system, server_factory, client):
        server = server_factory(system, workers=2)
        status, payload = client(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert payload["workers_alive"] == 2
        assert payload["workers_ready"] == 2
        assert len(set(payload["worker_pids"])) == 2
        assert os.getpid() not in payload["worker_pids"]

    def test_resolve_matches_direct_resolution(self, system, server_factory, client):
        server = server_factory(system, workers=2)
        for graph in (ranieri_graph(), ranieri_extended_graph()):
            status, payload = client(server, "POST", "/resolve", {"graph": json_io.to_dict(graph)})
            assert status == 200
            assert stable(payload) == stable(encode_result(system.resolve(graph)))

    def test_sessions_route_and_serve_across_shards(self, system, server_factory, client):
        server = server_factory(system, workers=2)
        edit = {
            "adds": [
                {
                    "s": "CR",
                    "p": "coach",
                    "o": "Fulham",
                    "interval": [2018, 2019],
                    "confidence": 0.7,
                }
            ]
        }
        sids = []
        for _ in range(6):
            status, created = client(
                server, "POST", "/sessions", {"graph": json_io.to_dict(ranieri_graph())}
            )
            assert status == 201
            sids.append(created["session_id"])
        expected = None
        for sid in sids:
            status, edited = client(server, "POST", f"/sessions/{sid}/edits", edit)
            assert status == 200
            if expected is None:
                expected = stable(edited["result"])
            else:  # same graph + same edit → bit-identical on every shard
                assert stable(edited["result"]) == expected
        _, stats = client(server, "GET", "/stats")
        assert stats["sessions"]["routed"] == 6
        assert stats["sharding"]["workers"] == 2
        # With 6 sessions on a 64-replica ring both shards almost always own
        # some; assert only the invariant sum so the test stays seed-free.
        per_worker = [entry["sessions"]["active"] for entry in stats["workers"]]
        assert sum(per_worker) == 6


class TestKillWorkerRecovery:
    def test_sigkilled_workers_respawn_with_shard_replayed(
        self, system, server_factory, client, tmp_path
    ):
        server = server_factory(system, workers=2, wal_dir=str(tmp_path / "wal"))
        edit = {
            "adds": [
                {
                    "s": "CR",
                    "p": "coach",
                    "o": "Fulham",
                    "interval": [2018, 2019],
                    "confidence": 0.7,
                }
            ]
        }
        views = {}
        for _ in range(4):
            status, created = client(
                server, "POST", "/sessions", {"graph": json_io.to_dict(ranieri_graph())}
            )
            assert status == 201
            sid = created["session_id"]
            status, edited = client(server, "POST", f"/sessions/{sid}/edits", edit)
            assert status == 200
            views[sid] = stable(edited["result"])

        _, health = client(server, "GET", "/healthz")
        old_pids = health["worker_pids"]
        for pid in old_pids:
            os.kill(pid, signal.SIGKILL)

        deadline = time.monotonic() + 60.0
        while True:
            _, health = client(server, "GET", "/healthz")
            respawned = (
                health["workers_ready"] == 2
                and health["respawns"] >= 2
                and not set(health["worker_pids"]) & set(old_pids)
            )
            if respawned:
                break
            assert time.monotonic() < deadline, f"workers never respawned: {health}"
            time.sleep(0.2)

        # Every session answers bit-identically to its pre-kill state …
        for sid, expected in views.items():
            status, read = client(server, "GET", f"/sessions/{sid}/result")
            assert status == 200
            assert stable(read["result"]) == expected
        # … and keeps accepting edits after the replay.
        sid = next(iter(views))
        status, _ = client(server, "POST", f"/sessions/{sid}/edits", {"removes": edit["adds"]})
        assert status == 200
        _, stats = client(server, "GET", "/stats")
        assert stats["sharding"]["respawns"] >= 2
        # last_replay covers whichever shard respawned last; the log itself
        # must have been scanned (the bit-identical reads prove the replay).
        assert stats["sharding"]["last_replay"]["records_scanned"] >= 8
