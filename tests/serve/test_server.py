"""Threaded endpoint tests for the `tecore serve` HTTP service.

The load-bearing guarantees:

* concurrent ``POST /resolve`` requests produce payloads bit-identical to
  direct ``TeCoRe.resolve`` calls (modulo wall-clock timings);
* interleaved session edits are serialised per session and never corrupt
  the grounder state — the final state matches a session fed the same
  edits directly;
* the bounded queue rejects overload with 503 instead of collapsing.
"""

import threading

from repro.datasets import ranieri_extended_graph, ranieri_graph
from repro.kg import make_fact
from repro.kg.io import json_io
from repro.serve import encode_result, stable_view


def stable(payload):
    return stable_view(payload)


class TestHealthAndStats:
    def test_healthz(self, system, server_factory, client):
        server = server_factory(system)
        status, payload = client(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["solver"] == "nrockit"
        assert payload["sessions"] == 0

    def test_stats_reports_endpoints_batcher_and_sessions(self, system, server_factory, client):
        server = server_factory(system)
        client(server, "POST", "/resolve", {"graph": json_io.to_dict(ranieri_graph())})
        client(server, "POST", "/sessions", {"graph": json_io.to_dict(ranieri_graph())})
        status, payload = client(server, "GET", "/stats")
        assert status == 200
        resolve_stats = payload["endpoints"]["POST /resolve"]
        assert resolve_stats["requests"] == 1
        assert set(resolve_stats) >= {"p50_ms", "p90_ms", "p99_ms", "mean_ms"}
        assert payload["batcher"]["requests"] == 1
        assert payload["sessions"]["active"] == 1
        assert "component_cache_hit_rate" in payload["sessions"]

    def test_unknown_endpoint_is_404(self, system, server_factory, client):
        server = server_factory(system)
        status, payload = client(server, "GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_unroutable_paths_share_one_metrics_bucket(self, system, server_factory, client):
        # A crawler must not grow the per-endpoint recorder map unboundedly.
        server = server_factory(system)
        for path in ("/a", "/b", "/c"):
            assert client(server, "GET", path)[0] == 404
        _, stats = client(server, "GET", "/stats")
        unmatched = stats["endpoints"]["unmatched"]
        assert unmatched["requests"] == 3 and unmatched["errors"] == 3
        assert not any(endpoint.endswith("/a") for endpoint in stats["endpoints"])

    def test_malformed_content_length_is_400(self, system, server_factory):
        import http.client

        server = server_factory(system)
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/resolve")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            connection.close()


class TestResolveEndpoint:
    def test_single_resolve_matches_direct_resolution(self, system, server_factory, client):
        server = server_factory(system)
        graph = ranieri_graph()
        status, payload = client(server, "POST", "/resolve", {"graph": json_io.to_dict(graph)})
        assert status == 200
        assert stable(payload) == stable(encode_result(system.resolve(graph)))

    def test_include_graphs_round_trips(self, system, server_factory, client):
        server = server_factory(system)
        graph = ranieri_graph()
        status, payload = client(
            server,
            "POST",
            "/resolve",
            {"graph": json_io.to_dict(graph), "include_graphs": True},
        )
        assert status == 200
        # Compare under the JSON codec on both sides (typed literals are
        # stringified by the interchange format on either path).
        direct = system.resolve(graph).consistent_graph
        assert payload["consistent_graph"] == json_io.to_dict(direct)
        assert payload["expanded_graph"]["facts"]  # inferred facts included

    def test_concurrent_resolves_are_bit_identical(self, system, server_factory, client):
        server = server_factory(system, max_batch=4, batch_delay=0.05)
        graphs = [ranieri_graph(), ranieri_extended_graph()]
        expected = [stable(encode_result(system.resolve(graph))) for graph in graphs]
        outcomes = [None] * 8

        def worker(index):
            graph = graphs[index % 2]
            status, payload = client(server, "POST", "/resolve", {"graph": json_io.to_dict(graph)})
            outcomes[index] = (status, stable(payload) == expected[index % 2])

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(outcome == (200, True) for outcome in outcomes)
        _, stats = client(server, "GET", "/stats")
        assert stats["batcher"]["requests"] == 8
        # Identical in-flight graphs coalesce: fewer solves than requests.
        assert stats["batcher"]["resolves"] <= stats["batcher"]["requests"]

    def test_overload_returns_503_and_correct_results_for_the_rest(
        self, system, server_factory, client
    ):
        server = server_factory(
            system, max_batch=64, batch_delay=0.01, queue_limit=1, coalesce=False
        )
        graph = ranieri_graph()
        expected = stable(encode_result(system.resolve(graph)))
        body = {"graph": json_io.to_dict(graph)}

        # Hold the flush worker so the single queue slot fills and *stays*
        # full: backpressure becomes deterministic instead of a race against
        # the batching window.
        batcher = server.service.batcher
        batcher.pause()
        occupant = [None]

        def worker():
            occupant[0] = client(server, "POST", "/resolve", body)

        thread = threading.Thread(target=worker)
        thread.start()
        assert batcher.wait_for_queue_depth(1)
        rejected = [client(server, "POST", "/resolve", body) for _ in range(3)]
        batcher.resume()
        thread.join()

        status, payload = occupant[0]
        assert status == 200, "the queued request must still be served"
        assert stable(payload) == expected
        for status, payload in rejected:
            assert status == 503 and "error" in payload
        _, stats = client(server, "GET", "/stats")
        assert stats["batcher"]["rejected"] == 3

    def test_malformed_requests_are_400(self, system, server_factory, client):
        server = server_factory(system)
        assert client(server, "POST", "/resolve", {"no": "graph"})[0] == 400
        assert (client(server, "POST", "/resolve", {"graph": {"facts": [{"s": "x"}]}})[0] == 400)


class TestSessionEndpoints:
    NAPOLI = {"s": "CR", "p": "coach", "o": "Napoli", "interval": [2001, 2003]}

    def test_session_lifecycle_matches_direct_session(self, system, server_factory, client):
        server = server_factory(system)
        graph = ranieri_graph()
        status, created = client(server, "POST", "/sessions", {"graph": json_io.to_dict(graph)})
        assert status == 201
        sid = created["session_id"]

        direct = system.session(graph)
        assert stable(created["result"]) == stable(encode_result(direct.result))

        status, edited = client(
            server, "POST", f"/sessions/{sid}/edits", {"removes": [self.NAPOLI]}
        )
        assert status == 200
        direct_result = direct.apply(removes=[("CR", "coach", "Napoli", (2001, 2003))])
        assert edited["result"]["delta"]["facts_removed"] == 1
        assert stable(edited["result"]) == stable(encode_result(direct_result))

        status, latest = client(server, "GET", f"/sessions/{sid}/result")
        assert status == 200
        assert stable(latest["result"]) == stable(encode_result(direct.result))

        status, deleted = client(server, "DELETE", f"/sessions/{sid}")
        assert status == 200
        assert deleted["deleted"] is True and deleted["edits_applied"] == 1
        assert client(server, "GET", f"/sessions/{sid}/result")[0] == 404

    def test_unknown_session_is_404(self, system, server_factory, client):
        server = server_factory(system)
        assert client(server, "GET", "/sessions/deadbeef/result")[0] == 404
        assert client(server, "POST", "/sessions/deadbeef/edits", {"removes": [self.NAPOLI]})[
            0
        ] == 404
        assert client(server, "DELETE", "/sessions/deadbeef")[0] == 404

    def test_empty_edit_request_is_400(self, system, server_factory, client):
        server = server_factory(system)
        _, created = client(
            server, "POST", "/sessions", {"graph": json_io.to_dict(ranieri_graph())}
        )
        sid = created["session_id"]
        assert client(server, "POST", f"/sessions/{sid}/edits", {})[0] == 400
        assert (client(server, "POST", f"/sessions/{sid}/edits", {"adds": "nope"})[0] == 400)

    def test_interleaved_edits_are_serialised_per_session(self, system, server_factory, client):
        server = server_factory(system)
        graph = ranieri_graph()
        _, created = client(server, "POST", "/sessions", {"graph": json_io.to_dict(graph)})
        sid = created["session_id"]

        # Disjoint intervals: the added facts conflict with nothing, so the
        # expected MAP state is independent of the edit arrival order.
        added = [
            {
                "s": "CR",
                "p": "coach",
                "o": f"Club{i}",
                "interval": [2020 + 10 * i, 2025 + 10 * i],
                "confidence": 0.8,
            }
            for i in range(6)
        ]
        statuses = [None] * len(added)

        def worker(index):
            statuses[index], _ = client(
                server, "POST", f"/sessions/{sid}/edits", {"adds": [added[index]]}
            )

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(added))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses == [200] * len(added)

        status, latest = client(server, "GET", f"/sessions/{sid}/result")
        assert status == 200
        # Add-only edits commute, so the final state must match a session
        # over the fully edited graph — any interleaving corruption of the
        # grounder state would break objective/fact equality here.
        final = graph.copy(name=graph.name)
        for entry in added:
            final.add(
                make_fact(
                    entry ["s"],
                    entry ["p"],
                    entry ["o"],
                    tuple (entry ["interval"]),
                    entry ["confidence"],
                )
            )
        expected = system.session(final).result
        served = latest["result"]
        assert served["statistics"]["input_facts"] == len(final)
        assert served["statistics"]["objective"] == expected.objective
        assert sorted(served["removed_facts"]) == sorted(
            str(fact) for fact in expected.removed_facts
        )
        assert sorted(served["inferred_facts"]) == sorted(
            str(fact) for fact in expected.inferred_facts
        )
        _, stats = client(server, "GET", "/stats")
        assert stats["sessions"]["edits_applied"] == len(added)

    def test_lru_eviction_over_the_session_pool(self, system, server_factory, client):
        server = server_factory(system, max_sessions=2)
        doc = {"graph": json_io.to_dict(ranieri_graph())}
        sids = [client(server, "POST", "/sessions", doc)[1]["session_id"] for _ in range(3)]
        assert client(server, "GET", f"/sessions/{sids[0]}/result")[0] == 404
        assert client(server, "GET", f"/sessions/{sids[1]}/result")[0] == 200
        assert client(server, "GET", f"/sessions/{sids[2]}/result")[0] == 200
        _, stats = client(server, "GET", "/stats")
        assert stats["sessions"]["evicted"] == 1
        assert stats["sessions"]["active"] == 2


class TestServeCommand:
    def test_cli_serve_smoke(self, capsys):
        from repro.cli import main

        assert main(
            [
                "serve",
                "--pack", "running-example",
                "--port", "0",
                "--for-seconds", "0.05",
            ]
        ) == 0
        assert "serving on http://127.0.0.1:" in capsys.readouterr().out

    def test_cli_serve_requires_program(self, capsys):
        from repro.cli import main

        assert main(["serve", "--port", "0", "--for-seconds", "0.05"]) == 1
        assert "error" in capsys.readouterr().err

    def test_cli_serve_bad_tuning_values_report_error(self, capsys):
        from repro.cli import main

        exit_code = main(["serve", "--pack", "running-example", "--port", "0", "--batch-max", "0"])
        assert exit_code == 1
        assert "max_batch" in capsys.readouterr().err
