"""Shared fixtures for the serving-layer tests."""

import http.client
import json

import pytest

from repro import TeCoRe
from repro.serve import ServerConfig, make_server


@pytest.fixture
def system():
    return TeCoRe.from_pack("running-example", solver="nrockit")


@pytest.fixture
def server_factory():
    """Start servers on free ports; every server is closed at teardown."""
    servers = []

    def factory(system, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        server = make_server(system, ServerConfig(**config_kwargs))
        servers.append(server)
        server.run_in_thread()
        return server

    yield factory
    for server in servers:
        server.close()


@pytest.fixture
def client():
    """A tiny JSON-over-HTTP client: client(server, method, path[, payload])."""

    def request(server, method, path, payload=None, timeout=30.0):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            connection.request(
                method,
                path,
                body=json.dumps(payload) if payload is not None else None,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    return request
