"""Session lifecycle races: delete-vs-edit and eviction-under-concurrent-edit.

The delete/edit interleaving here is the bug class the serializability
harness (:mod:`repro.verify`) caught live: an edit that looked up its pool
entry *before* a concurrent ``DELETE`` popped it used to mutate the orphaned
session and answer 200, after the delete response had already reported the
session's final fact and edit counts — no serial order explains both.  The
fix is the :attr:`~repro.serve.sessions.SessionEntry.closed` flag; these
tests pin its semantics deterministically, and
``tests/verify/test_regression_fixtures.py`` keeps the checker-level
evidence.
"""

import json
import threading

import pytest

from repro.datasets import ranieri_graph
from repro.kg import make_fact
from repro.kg.io import json_io
from repro.serve import ServerConfig
from repro.serve.server import ResolutionService
from repro.serve.sessions import SessionPool, UnknownSessionError


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _edit_body(index: int) -> bytes:
    return _body(
        {
            "adds": [
                {
                    "s": "Marker",
                    "p": "editedAt",
                    "o": f"v{index}",
                    "interval": [2000 + index, 2001 + index],
                    "confidence": 0.9,
                }
            ]
        }
    )


@pytest.fixture
def service(system):
    service = ResolutionService(system, ServerConfig(max_sessions=2, batch_delay=0.001))
    yield service
    service.close()


def _create_session(service) -> str:
    status, payload = service.handle(
        "POST", "/sessions", _body({"graph": json_io.to_dict(ranieri_graph())})
    )
    assert status == 201
    return payload["session_id"]


class TestDeleteVersusEdit:
    def test_delete_closes_the_entry_under_its_lock(self, service):
        sid = _create_session(service)
        stale = service.sessions.get(sid)  # an in-flight handler's lookup
        status, payload = service.handle("DELETE", f"/sessions/{sid}", b"")
        assert status == 200
        # The delete response pins the session's final state...
        assert payload["edits_applied"] == 0
        assert payload["facts"] == len(stale.session.graph)
        # ...so the entry is closed and late operations must see 404.
        assert stale.closed

    def test_operations_after_delete_are_404_and_do_not_mutate(self, service):
        sid = _create_session(service)
        stale = service.sessions.get(sid)
        assert service.handle("DELETE", f"/sessions/{sid}", b"")[0] == 200
        facts_before = len(stale.session.graph)
        assert service.handle("POST", f"/sessions/{sid}/edits", _edit_body(0))[0] == 404
        assert service.handle("GET", f"/sessions/{sid}/result", b"")[0] == 404
        assert service.handle("DELETE", f"/sessions/{sid}", b"")[0] == 404
        assert len(stale.session.graph) == facts_before
        assert stale.edits_applied == 0

    def test_concurrent_edits_and_delete_stay_serializable(self, service):
        # A thread-race soak of the exact caught interleaving: however the
        # lock race lands, every 200 edit must be counted in the delete's
        # final ``edits_applied`` and every uncounted edit must answer 404.
        for round_index in range(5):
            sid = _create_session(service)
            entry = service.sessions.get(sid)
            barrier = threading.Barrier(3)
            statuses = [None, None]

            def edit(slot, sid=sid, barrier=barrier, statuses=statuses):
                barrier.wait()
                statuses[slot] = service.handle(
                    "POST", f"/sessions/{sid}/edits", _edit_body(slot)
                )[0]

            deleted = {}

            def delete(sid=sid, barrier=barrier, deleted=deleted):
                barrier.wait()
                status, payload = service.handle("DELETE", f"/sessions/{sid}", b"")
                deleted.update(payload, status=status)

            threads = [
                threading.Thread(target=edit, args=(0,)),
                threading.Thread(target=edit, args=(1,)),
                threading.Thread(target=delete),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert deleted["status"] == 200
            succeeded = sum(1 for status in statuses if status == 200)
            assert all(status in (200, 404) for status in statuses)
            # The invariant the harness caught being violated: the final
            # report counts exactly the edits that were acknowledged.
            assert deleted["edits_applied"] == succeeded == entry.edits_applied


class TestEvictionUnderConcurrentEdit:
    def test_evicted_entry_is_unroutable_but_not_closed(self, system):
        pool = SessionPool(system, max_sessions=1)
        first = pool.create(ranieri_graph())
        pool.create(ranieri_graph())  # evicts ``first``
        with pytest.raises(UnknownSessionError):
            pool.get(first.session_id)
        # Eviction produces no client-visible final-state response, so an
        # in-flight request holding the entry may still finish against it.
        assert not first.closed
        assert pool.evicted_total == 1

    def test_in_flight_edit_survives_eviction(self, service):
        sid = _create_session(service)
        stale = service.sessions.get(sid)
        # Fill the pool (max_sessions=2) until ``sid`` is evicted.
        _create_session(service)
        _create_session(service)
        assert service.handle("GET", f"/sessions/{sid}/result", b"")[0] == 404
        # The orphaned session object still accepts the edit an in-flight
        # handler would apply — no corruption, no close.
        facts_before = len(stale.session.graph)
        extra = make_fact("Marker", "editedAt", "post-evict", (2100, 2101), 0.5)
        with stale.lock:
            stale.session.apply(adds=[extra], removes=[])
        assert not stale.closed
        assert len(stale.session.graph) == facts_before + 1

    def test_eviction_races_with_edit_storm(self, service):
        # One writer hammers a session while another thread churns creates
        # that will evict it.  Every edit must answer 200 (applied and
        # counted) or 404 (post-eviction routing miss) — never a 5xx — and
        # the entry's count must equal the number of 200s.
        sid = _create_session(service)
        entry = service.sessions.get(sid)
        results = []
        stop = threading.Event()

        def writer():
            for index in range(30):
                status, _ = service.handle("POST", f"/sessions/{sid}/edits", _edit_body(index))
                results.append(status)
            stop.set()

        def churner():
            while not stop.is_set():
                _create_session(service)

        threads = [threading.Thread(target=writer), threading.Thread(target=churner)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(status in (200, 404) for status in results)
        assert entry.edits_applied == sum(1 for status in results if status == 200)
        assert not entry.closed


class TestEvictionVersusWal:
    """LRU eviction drops only the in-memory entry — never log history.

    Eviction is a capacity decision, deletion a client decision; the WAL
    records the latter and ignores the former.  So an evicted session is
    recoverable from the log by a restart with more capacity, while an
    explicitly deleted one must never come back (its ``delete`` record is
    a tombstone replay honours unconditionally).
    """

    def _durable_service(self, system, wal_dir, max_sessions):
        return ResolutionService(
            system,
            ServerConfig(wal_dir=str(wal_dir), max_sessions=max_sessions, batch_delay=0.001),
        )

    def test_evicted_session_is_recoverable_from_the_log(self, system, tmp_path):
        service = self._durable_service(system, tmp_path, max_sessions=2)
        first = _create_session(service)
        assert (service.handle("POST", f"/sessions/{first}/edits", _edit_body(1))[0] == 200)
        _create_session(service)
        _create_session(service)  # evicts ``first`` from the pool...
        assert service.handle("GET", f"/sessions/{first}/result", b"")[0] == 404
        service.close()

        # ...but not from the log: a restart with headroom replays it,
        # edits included.
        restarted = ResolutionService(system, ServerConfig(wal_dir=str(tmp_path), max_sessions=8))
        try:
            assert restarted.recovery.sessions_restored == 3
            status, payload = restarted.handle("GET", f"/sessions/{first}/result", b"")
            assert status == 200
            assert restarted.sessions.get(first).edits_applied == 1
        finally:
            restarted.close()

    def test_recovery_respects_the_pool_bound_by_recency(self, system, tmp_path):
        service = self._durable_service(system, tmp_path, max_sessions=2)
        oldest = _create_session(service)
        newer = [_create_session(service) for _ in range(2)]
        service.close()

        restarted = self._durable_service(system, tmp_path, max_sessions=2)
        try:
            # Only the most recently logged sessions fit; the rest are
            # skipped (recovery must not itself trigger evictions).
            assert restarted.recovery.sessions_restored == 2
            assert restarted.recovery.sessions_skipped == 1
            assert restarted.handle("GET", f"/sessions/{oldest}/result", b"")[0] == 404
            for sid in newer:
                assert restarted.handle("GET", f"/sessions/{sid}/result", b"")[0] == 200
        finally:
            restarted.close()

    def test_deleted_session_is_never_resurrected(self, system, tmp_path):
        service = self._durable_service(system, tmp_path, max_sessions=2)
        doomed = _create_session(service)
        assert service.handle("DELETE", f"/sessions/{doomed}", b"")[0] == 200
        service.close()

        restarted = ResolutionService(system, ServerConfig(wal_dir=str(tmp_path), max_sessions=8))
        try:
            assert restarted.recovery.sessions_restored == 0
            assert restarted.recovery.sessions_deleted == 1
            assert restarted.handle("GET", f"/sessions/{doomed}/result", b"")[0] == 404
        finally:
            restarted.close()
