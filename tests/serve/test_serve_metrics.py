"""Edge-case tests for the serving metrics recorders.

The ``/stats`` payload is assembled from these recorders under concurrent
traffic, so the boundary conditions — empty window, single sample, window
overflow, generation resets — must be exact, not merely plausible.
"""

import pytest

from repro.serve.metrics import PERCENTILES, LatencyRecorder, ServiceMetrics


class TestLatencyRecorder:
    def test_empty_window_reports_zeroes(self):
        snapshot = LatencyRecorder().snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["errors"] == 0
        assert snapshot["mean_ms"] == 0.0
        for p in PERCENTILES:
            assert snapshot[f"p{p}_ms"] == 0.0

    def test_single_sample_is_every_percentile(self):
        recorder = LatencyRecorder()
        recorder.observe(0.25)
        snapshot = recorder.snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["mean_ms"] == 250.0
        for p in PERCENTILES:
            assert snapshot[f"p{p}_ms"] == 250.0

    def test_nearest_rank_on_known_distribution(self):
        recorder = LatencyRecorder()
        for ms in range(1, 101):  # 1..100 ms, inserted out of sorted order
            recorder.observe(((ms * 37) % 100 + 1) / 1000)
        snapshot = recorder.snapshot()
        assert snapshot["p50_ms"] == 51.0
        assert snapshot["p90_ms"] == 91.0
        assert snapshot["p99_ms"] == 100.0

    def test_window_overflow_drops_old_samples_but_keeps_counters(self):
        recorder = LatencyRecorder(window=4)
        for _ in range(10):
            recorder.observe(1.0)
        for _ in range(4):
            recorder.observe(0.001)
        snapshot = recorder.snapshot()
        # Counters are monotonic over the recorder's lifetime...
        assert snapshot["requests"] == 14
        assert snapshot["mean_ms"] > 500.0
        # ...but percentiles see only the sliding window of recent samples.
        assert snapshot["p99_ms"] == 1.0

    def test_clear_resets_counters_and_window(self):
        recorder = LatencyRecorder()
        recorder.observe(0.5, error=True)
        recorder.observe(0.1)
        recorder.clear()
        assert recorder.snapshot() == {
            "requests": 0,
            "errors": 0,
            "mean_ms": 0.0,
            **{f"p{p}_ms": 0.0 for p in PERCENTILES},
        }
        # The recorder keeps working after a generation reset.
        recorder.observe(0.2)
        snapshot = recorder.snapshot()
        assert snapshot["requests"] == 1 and snapshot["errors"] == 0
        assert snapshot["p50_ms"] == 200.0

    def test_error_observations_count_in_both_buckets(self):
        recorder = LatencyRecorder()
        recorder.observe(0.01, error=True)
        recorder.observe(0.01)
        snapshot = recorder.snapshot()
        assert snapshot["requests"] == 2 and snapshot["errors"] == 1

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyRecorder(window=0)


class TestServiceMetrics:
    def test_clear_resets_every_endpoint_but_keeps_the_map(self):
        metrics = ServiceMetrics(window=8)
        metrics.observe("GET /a", 0.01)
        metrics.observe("POST /b", 0.02, error=True)
        metrics.clear()
        snapshot = metrics.snapshot()
        assert set(snapshot) == {"GET /a", "POST /b"}
        for entry in snapshot.values():
            assert entry["requests"] == 0 and entry["errors"] == 0
            assert entry["mean_ms"] == 0.0

    def test_snapshot_is_sorted_by_endpoint(self):
        metrics = ServiceMetrics()
        metrics.observe("POST /resolve", 0.01)
        metrics.observe("GET /stats", 0.01)
        assert list(metrics.snapshot()) == ["GET /stats", "POST /resolve"]

    def test_recorder_identity_is_stable(self):
        metrics = ServiceMetrics()
        assert metrics.recorder("x") is metrics.recorder("x")
