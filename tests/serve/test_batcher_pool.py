"""Unit tests for the micro-batcher and the session pool (no HTTP)."""

import threading
import time

import pytest

from repro.datasets import ranieri_extended_graph, ranieri_graph
from repro.serve import (
    LatencyRecorder,
    MicroBatcher,
    ServiceOverloadedError,
    SessionPool,
    UnknownSessionError,
    graph_content_key,
)


class StubResolver:
    """Duck-typed SharedResolver recording the batches it was handed."""

    def __init__(self, delay=0.0):
        self.delay = delay
        self.batches = []
        self._lock = threading.Lock()

    def resolve_many(self, graphs):
        items = list(graphs)
        with self._lock:
            self.batches.append(items)
        if self.delay:
            time.sleep(self.delay)
        return [("solved", item) for item in items]


def submit_all(batcher, items, timeout=30.0):
    """Submit every item from its own thread; returns results in item order."""
    results = [None] * len(items)
    errors = [None] * len(items)

    def worker(index, item):
        try:
            results[index] = batcher.submit(item, timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - surfaced via `errors`
            errors[index] = exc

    threads = [
        threading.Thread(target=worker, args=(index, item)) for index, item in enumerate(items)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class TestMicroBatcher:
    def test_flush_on_size(self):
        resolver = StubResolver()
        batcher = MicroBatcher(resolver, max_batch=3, max_delay=5.0, coalesce=False, cache_size=0)
        try:
            started = time.perf_counter()
            results, errors = submit_all(batcher, ["a", "b", "c"])
            elapsed = time.perf_counter() - started
            assert errors == [None, None, None]
            # Each submitter got the result of its own request.
            assert results == [("solved", "a"), ("solved", "b"), ("solved", "c")]
            # The size trigger fired long before the 5 s deadline.
            assert elapsed < 2.0
            assert batcher.snapshot()["batches"] == 1
            assert batcher.snapshot()["max_batch_size"] == 3
        finally:
            batcher.close()

    def test_flush_on_deadline(self):
        resolver = StubResolver()
        batcher = MicroBatcher(
            resolver, max_batch=100, max_delay=0.05, coalesce=False, cache_size=0
        )
        try:
            results, errors = submit_all(batcher, ["a", "b"])
            assert errors == [None, None]
            assert sorted(len(batch) for batch in resolver.batches) in ([2], [1, 1])
            assert batcher.snapshot()["requests"] == 2
        finally:
            batcher.close()

    def test_coalesces_identical_graphs(self):
        resolver = StubResolver()
        batcher = MicroBatcher(resolver, max_batch=2, max_delay=1.0, coalesce=True)
        try:
            first, second = ranieri_graph(), ranieri_graph()
            assert graph_content_key(first) == graph_content_key(second)
            results, errors = submit_all(batcher, [first, second])
            assert errors == [None, None]
            # One solve served both requests with the identical result object.
            assert results[0] is results[1]
            assert [len(batch) for batch in resolver.batches] == [1]
            snapshot = batcher.snapshot()
            assert snapshot["coalesced"] == 1
            assert snapshot["resolves"] == 1
        finally:
            batcher.close()

    def test_distinct_graphs_not_coalesced(self):
        resolver = StubResolver()
        batcher = MicroBatcher(resolver, max_batch=2, max_delay=1.0, coalesce=True)
        try:
            results, errors = submit_all(batcher, [ranieri_graph(), ranieri_extended_graph()])
            assert errors == [None, None]
            assert results[0] is not results[1]
            assert batcher.snapshot()["coalesced"] == 0
        finally:
            batcher.close()

    def test_backpressure_raises_overloaded(self):
        resolver = StubResolver()
        batcher = MicroBatcher(
            resolver,
            max_batch=100,
            max_delay=0.5,
            queue_limit=2,
            coalesce=False,
            cache_size=0,
        )
        try:
            # Hold the flush worker so the queue can only grow: backpressure
            # becomes deterministic instead of racing the batching window.
            batcher.pause()
            fillers = [threading.Thread(target=batcher.submit, args=(item,)) for item in ("a", "b")]
            for thread in fillers:
                thread.start()
            assert batcher.wait_for_queue_depth(2)
            with pytest.raises(ServiceOverloadedError):
                batcher.submit("c")
            assert batcher.snapshot()["rejected"] == 1
            batcher.resume()
            for thread in fillers:
                thread.join()
        finally:
            batcher.close()

    def test_resolver_error_is_delivered_to_every_waiter(self):
        class ExplodingResolver:
            def resolve_many(self, graphs):
                list(graphs)
                raise RuntimeError("backend down")

        batcher = MicroBatcher(
            ExplodingResolver(), max_batch=2, max_delay=1.0, coalesce=False, cache_size=0
        )
        try:
            results, errors = submit_all(batcher, ["a", "b"])
            assert results == [None, None]
            assert all(isinstance(error, RuntimeError) for error in errors)
        finally:
            batcher.close()

    def test_response_cache_serves_repeats_without_resolving(self):
        resolver = StubResolver()
        batcher = MicroBatcher(resolver, max_batch=1, max_delay=0.01, coalesce=True, cache_size=8)
        try:
            graph = ranieri_graph()
            first = batcher.submit(graph)
            second = batcher.submit(ranieri_graph())  # same content, new object
            assert second is first
            assert len(resolver.batches) == 1
            snapshot = batcher.snapshot()
            assert snapshot["requests"] == 2
            assert snapshot["response_cache_hits"] == 1
            assert snapshot["response_cache_entries"] == 1
        finally:
            batcher.close()

    def test_response_cache_disabled_resolves_every_repeat(self):
        resolver = StubResolver()
        batcher = MicroBatcher(resolver, max_batch=1, max_delay=0.01, coalesce=True, cache_size=0)
        try:
            batcher.submit(ranieri_graph())
            batcher.submit(ranieri_graph())
            assert len(resolver.batches) == 2
            assert batcher.snapshot()["response_cache"] == "disabled"
        finally:
            batcher.close()

    def test_close_rejects_new_submissions(self):
        batcher = MicroBatcher(StubResolver(), max_batch=2, max_delay=0.01)
        batcher.close()
        with pytest.raises(Exception):
            batcher.submit(ranieri_graph())

    def test_invalid_configuration_rejected(self):
        resolver = StubResolver()
        with pytest.raises(ValueError):
            MicroBatcher(resolver, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(resolver, max_delay=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(resolver, queue_limit=0)


class TestSessionPool:
    def test_create_get_delete(self, system):
        pool = SessionPool(system, max_sessions=4)
        entry = pool.create(ranieri_graph())
        assert pool.get(entry.session_id) is entry
        assert len(pool) == 1
        pool.delete(entry.session_id)
        assert len(pool) == 0
        with pytest.raises(UnknownSessionError):
            pool.get(entry.session_id)

    def test_lru_eviction_prefers_stale_sessions(self, system):
        pool = SessionPool(system, max_sessions=2)
        first = pool.create(ranieri_graph())
        second = pool.create(ranieri_graph())
        pool.get(first.session_id)  # refresh: `second` is now least recently used
        third = pool.create(ranieri_graph())
        with pytest.raises(UnknownSessionError):
            pool.get(second.session_id)
        assert pool.get(first.session_id) is first
        assert pool.get(third.session_id) is third
        assert pool.evicted_total == 1

    def test_snapshot_aggregates_cache_counters(self, system):
        pool = SessionPool(system, max_sessions=4)
        entry = pool.create(ranieri_graph())
        with entry.lock:
            entry.session.apply(removes=[("CR", "coach", "Napoli", (2001, 2003))])
            entry.edits_applied += 1
        snapshot = pool.snapshot()
        assert snapshot["active"] == 1
        assert snapshot["edits_applied"] == 1
        assert snapshot["component_cache_hits"] == entry.session.cache.hits
        assert 0.0 <= snapshot["component_cache_hit_rate"] <= 1.0

    def test_rejects_non_positive_capacity(self, system):
        with pytest.raises(ValueError):
            SessionPool(system, max_sessions=0)


class TestLatencyRecorder:
    def test_percentiles_and_counters(self):
        recorder = LatencyRecorder(window=100)
        for value in range(1, 101):  # 1..100 ms
            recorder.observe(value / 1000)
        snapshot = recorder.snapshot()
        assert snapshot["requests"] == 100
        assert snapshot["p50_ms"] == pytest.approx(51.0)
        assert snapshot["p99_ms"] == pytest.approx(100.0)
        assert snapshot["p90_ms"] <= snapshot["p99_ms"]

    def test_window_is_bounded(self):
        recorder = LatencyRecorder(window=4)
        for _ in range(100):
            recorder.observe(0.001)
        recorder.observe(1.0)
        assert recorder.percentiles()["p99_ms"] == pytest.approx(1000.0)
        assert recorder.count == 101

    def test_empty_recorder_reports_zeros(self):
        snapshot = LatencyRecorder().snapshot()
        assert snapshot == {
            "requests": 0,
            "errors": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p90_ms": 0.0,
            "p99_ms": 0.0,
        }
