"""Durability: WAL framing, crash recovery by replay, and compaction.

The contract under test (see ``docs/serving.md``): a service started with
``wal_dir`` logs every session mutation *before* applying it, so an
abruptly-killed process restarted on the same directory serves results
**bit-identical** (modulo wall-clock timing fields) to the uncrashed run —
and a combined pre/post-crash client history stays serializable.  The
abrupt kill is simulated by abandoning the first service instance without
``close()`` — nothing is flushed or finalised on its behalf, exactly like
SIGKILL; ``tecore chaos`` covers the real-subprocess version.
"""

import json

import pytest

from repro.datasets import ranieri_graph
from repro.errors import TecoreError
from repro.kg.io import json_io
from repro.serve import ServerConfig, WalError, WriteAheadLog, compact_records
from repro.serve.protocol import stable_view
from repro.serve.server import ResolutionService
from repro.serve.wal import encode_record, list_segments, read_records, scan_wal_dir
from repro.verify import HistoryRecorder, SerializabilityChecker
from repro.verify.faults import FaultInjector, FaultRule, InjectedCrash


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _create_body() -> bytes:
    return _body({"graph": json_io.to_dict(ranieri_graph())})


EDIT = {
    "adds": [
        {
            "s": "CR",
            "p": "coach",
            "o": "Fulham",
            "interval": [2018, 2019],
            "confidence": 0.7,
        }
    ]
}

BAD_EDIT = {
    "adds": [
        {
            "s": "CR",
            "p": "coach",
            "o": "Nowhere",
            "interval": [2030, 2010],  # inverted interval: rejected, not applied
            "confidence": 0.7,
        }
    ]
}


def _service(system, wal_dir, **overrides) -> ResolutionService:
    config = ServerConfig(wal_dir=str(wal_dir), batch_delay=0.001, **overrides)
    return ResolutionService(system, config)


class TestWalFraming:
    def test_append_and_scan_roundtrip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync_policy="never")
        wal.append({"kind": "create", "session_id": "abc"})
        wal.append({"kind": "edit", "session_id": "abc", "adds": [], "removes": []})
        wal.close()
        records, torn, segment = scan_wal_dir(str(tmp_path))
        assert not torn and segment == 0
        assert [r["kind"] for r in records] == ["create", "edit"]
        assert [r["seq"] for r in records] == [0, 1]

    def test_torn_tail_stops_scan_and_is_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync_policy="never")
        wal.append({"kind": "create", "session_id": "abc"})
        wal.close()
        path = list_segments(str(tmp_path))[0][1]
        with open(path, "ab") as handle:
            handle.write(encode_record({"kind": "edit", "seq": 1})[:-4])  # torn frame
        records, torn = read_records(path)
        assert torn and len(records) == 1
        # Reopening truncates the tail; the next append lands cleanly.
        wal = WriteAheadLog(str(tmp_path), fsync_policy="never")
        assert wal.append({"kind": "delete", "session_id": "abc"}) == 1
        wal.close()
        records, torn = read_records(path)
        assert not torn
        assert [r["kind"] for r in records] == ["create", "delete"]

    def test_corrupted_checksum_marks_torn_tail(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync_policy="never")
        wal.append({"kind": "create", "session_id": "abc"})
        wal.append({"kind": "delete", "session_id": "abc"})
        wal.close()
        path = list_segments(str(tmp_path))[0][1]
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[-1] ^= 0xFF  # flip one payload byte of the final frame
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        records, torn = read_records(path)
        assert torn
        assert [r["kind"] for r in records] == ["create"]

    @pytest.mark.parametrize(
        "policy,batch,expected_min_syncs",
        [("always", 1, 3), ("batch", 2, 1), ("never", 1, 0)],
    )
    def test_fsync_policies_count_syncs(self, tmp_path, policy, batch, expected_min_syncs):
        wal = WriteAheadLog(
            str(tmp_path), fsync_policy=policy, fsync_batch=batch, fsync_interval=60.0
        )
        for index in range(3):
            wal.append({"kind": "resolve", "name": f"g{index}", "facts": 1})
        synced = wal.synced_total
        wal.close()
        if policy == "never":
            assert synced == 0
        else:
            assert synced >= expected_min_syncs

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), fsync_policy="sometimes")


class TestCrashRecovery:
    def test_restart_restores_sessions_bit_identical(self, system, tmp_path):
        service = _service(system, tmp_path)
        status, payload = service.handle("POST", "/sessions", _create_body())
        assert status == 201
        sid = payload["session_id"]
        assert service.handle("POST", f"/sessions/{sid}/edits", _body(EDIT))[0] == 200
        status, before = service.handle("GET", f"/sessions/{sid}/result", b"")
        assert status == 200
        # Abandon without close(): nothing is flushed on our behalf.

        restarted = _service(system, tmp_path)
        try:
            assert restarted.recovery is not None
            assert restarted.recovery.sessions_restored == 1
            assert restarted.recovery.edits_replayed == 1
            status, after = restarted.handle("GET", f"/sessions/{sid}/result", b"")
            assert status == 200
            assert stable_view(after) == stable_view(before)
        finally:
            restarted.close()
        service.close()

    def test_recovery_skips_edits_the_live_path_rejected(self, system, tmp_path):
        service = _service(system, tmp_path)
        sid = service.handle("POST", "/sessions", _create_body())[1]["session_id"]
        assert service.handle("POST", f"/sessions/{sid}/edits", _body(EDIT))[0] == 200
        status, _ = service.handle("POST", f"/sessions/{sid}/edits", _body(BAD_EDIT))
        assert status == 500  # invalid interval: rejected at apply, not applied
        status, before = service.handle("GET", f"/sessions/{sid}/result", b"")

        restarted = _service(system, tmp_path)
        try:
            # The bad edit died in decoding, *before* the WAL append — the
            # log holds only accepted work, so replay applies exactly the
            # one good edit and skips nothing.
            assert restarted.recovery.records_scanned == 2
            assert restarted.recovery.edits_replayed == 1
            assert restarted.recovery.edits_skipped == 0
            status, after = restarted.handle("GET", f"/sessions/{sid}/result", b"")
            assert stable_view(after) == stable_view(before)
        finally:
            restarted.close()
        service.close()

    def test_deleted_sessions_are_not_resurrected(self, system, tmp_path):
        service = _service(system, tmp_path)
        sid = service.handle("POST", "/sessions", _create_body())[1]["session_id"]
        keep = service.handle("POST", "/sessions", _create_body())[1]["session_id"]
        assert service.handle("DELETE", f"/sessions/{sid}", b"")[0] == 200

        restarted = _service(system, tmp_path)
        try:
            assert restarted.recovery.sessions_restored == 1
            assert restarted.recovery.sessions_deleted == 1
            assert restarted.handle("GET", f"/sessions/{sid}/result", b"")[0] == 404
            assert restarted.handle("GET", f"/sessions/{keep}/result", b"")[0] == 200
        finally:
            restarted.close()
        service.close()

    def test_torn_wal_tail_recovers_prefix(self, system, tmp_path):
        service = _service(system, tmp_path)
        sid = service.handle("POST", "/sessions", _create_body())[1]["session_id"]
        assert service.handle("POST", f"/sessions/{sid}/edits", _body(EDIT))[0] == 200
        status, before = service.handle("GET", f"/sessions/{sid}/result", b"")
        segment = list_segments(str(tmp_path))[-1][1]
        with open(segment, "ab") as handle:
            handle.write(b"\x00garbage-from-a-torn-append")

        restarted = _service(system, tmp_path)
        try:
            assert restarted.recovery.torn_tail
            assert restarted.recovery.sessions_restored == 1
            status, after = restarted.handle("GET", f"/sessions/{sid}/result", b"")
            assert stable_view(after) == stable_view(before)
        finally:
            restarted.close()
        service.close()

    def test_compaction_folds_log_and_preserves_results(self, system, tmp_path):
        service = _service(system, tmp_path, compact_every=3)
        sid = service.handle("POST", "/sessions", _create_body())[1]["session_id"]
        for _ in range(3):
            assert (service.handle("POST", f"/sessions/{sid}/edits", _body(EDIT))[0] == 200)
        status, before = service.handle("GET", f"/sessions/{sid}/result", b"")
        assert service.wal.compactions_total >= 1
        assert service.wal.segment_number >= 1
        # Only the folded segment remains on disk.
        numbers = [number for number, _ in list_segments(str(tmp_path))]
        assert numbers == [service.wal.segment_number]

        restarted = _service(system, tmp_path)
        try:
            assert restarted.recovery.sessions_restored == 1
            status, after = restarted.handle("GET", f"/sessions/{sid}/result", b"")
            assert stable_view(after) == stable_view(before)
        finally:
            restarted.close()
        service.close()

    def test_resolve_audit_records_fold_away(self, system, tmp_path):
        service = _service(system, tmp_path, compact_every=10_000)
        status, _ = service.handle("POST", "/resolve", _body(json_io.to_dict(ranieri_graph())))
        assert status == 200
        kinds = [r["kind"] for r in scan_wal_dir(str(tmp_path))[0]]
        assert kinds == ["resolve"]
        service.wal.compact(compact_records)
        assert scan_wal_dir(str(tmp_path))[0] == []
        service.close()


class TestInjectedWalFaults:
    def test_disk_full_append_is_503_without_mutation(self, system, tmp_path):
        injector = FaultInjector([FaultRule("wal.append", "disk_full", at=2)])
        config = ServerConfig(wal_dir=str(tmp_path), batch_delay=0.001)
        service = ResolutionService(system, config, injector=injector)
        sid = service.handle("POST", "/sessions", _create_body())[1]["session_id"]
        status, payload = service.handle("POST", f"/sessions/{sid}/edits", _body(EDIT))
        assert status == 503
        assert payload["retry_after_seconds"] >= 1
        entry = service.sessions.get(sid)
        assert entry.edits_applied == 0
        assert service.wal.append_errors_total == 1
        service.close()

        restarted = _service(system, tmp_path)
        try:
            # The refused edit is in neither the log nor the replayed state.
            assert restarted.recovery.edits_replayed == 0
        finally:
            restarted.close()

    def test_crash_before_edit_apply_leaves_wal_ahead_of_state(self, system, tmp_path):
        """A WAL'd-but-unapplied edit replays after the crash — and the
        combined client history still serializes (the edit's client never
        got an answer, so either outcome is legal; recovery chose applied)."""
        recorder = HistoryRecorder()
        injector = FaultInjector([FaultRule("session.apply", "crash", at=1)])
        config = ServerConfig(wal_dir=str(tmp_path), batch_delay=0.001)
        service = ResolutionService(system, config, injector=injector)
        op = recorder.begin("session_create", request=json.loads(_create_body()))
        status, payload = service._dispatch("POST", "/sessions", "", _create_body())
        recorder.complete(op, status, payload)
        sid = payload["session_id"]

        pending = recorder.begin("session_edit", request=EDIT, session_id=sid)
        with pytest.raises(InjectedCrash):
            service._dispatch("POST", f"/sessions/{sid}/edits", "", _body(EDIT))
        # The request thread died without answering: `pending` stays open,
        # and the service instance is abandoned (no close — "killed").

        restarted = ResolutionService(system, ServerConfig(wal_dir=str(tmp_path)))
        try:
            assert restarted.recovery.edits_replayed == 1
            read = recorder.begin("session_read", request={"include_graphs": False}, session_id=sid)
            status, payload = restarted._dispatch("GET", f"/sessions/{sid}/result", "", b"")
            recorder.complete(read, status, payload)
            assert status == 200
        finally:
            restarted.close()
        service.close()

        report = SerializabilityChecker(system).check(recorder.history())
        assert report.ok, report.summary()
        assert pending.completed is None

    def test_wal_closed_appends_raise(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        with pytest.raises(WalError):
            wal.append({"kind": "create"})
        with pytest.raises(TecoreError):
            wal.compact(lambda records: records)
