"""Differential tests: the indexed grounder must match the naive one.

The semi-naive :class:`~repro.logic.IndexedGrounder` is a pure optimisation
of :class:`~repro.logic.NaiveGrounder` — on every workload the two engines
must produce the same ground atoms, clauses, rule firings, violations, and
round count.  The suite checks this on the paper's running example, on the
synthetic FootballDB dataset (clean and noisy), and on randomized noisy
graphs, both order-independently (canonical signatures) and bit-for-bit
(atom/clause emission order).
"""

import random

import pytest

from repro.datasets import (
    FootballDBConfig,
    generate_footballdb,
    ranieri_extended_graph,
    ranieri_graph,
)
from repro.errors import GroundingError
from repro.kg import TemporalKnowledgeGraph
from repro.logic import (
    GROUNDING_ENGINES,
    Grounder,
    IndexedGrounder,
    NaiveGrounder,
    RuleBuilder,
    find_conflicts,
    ground,
    make_grounder,
    quad,
    running_example_constraints,
    running_example_rules,
    sports_pack,
)


def assert_equivalent(graph, rules, constraints, max_rounds=5):
    """Ground with both engines and compare every observable output."""
    naive = NaiveGrounder(
        graph, rules=rules, constraints=constraints, max_rounds=max_rounds
    ).ground()
    indexed = IndexedGrounder(
        graph, rules=rules, constraints=constraints, max_rounds=max_rounds
    ).ground()

    # Order-independent: same atoms and clauses as sets (the satellite
    # guarantee — "identical up to ordering").
    assert (
        naive.program.canonical_signature() == indexed.program.canonical_signature()
    ), "engines produced different ground programs"

    # Bit-for-bit: same emission order for atoms, clauses, firings, and
    # violations, and the same number of chaining rounds.
    assert [str(atom) for atom in naive.program.atoms] == [
        str(atom) for atom in indexed.program.atoms
    ]
    assert [str(clause) for clause in naive.program.clauses] == [
        str(clause) for clause in indexed.program.clauses
    ]
    assert naive.firings == indexed.firings
    assert naive.violations == indexed.violations
    assert naive.rounds == indexed.rounds
    return naive, indexed


# --------------------------------------------------------------------------- #
# Running example
# --------------------------------------------------------------------------- #
class TestRunningExampleEquivalence:
    def test_figure_1_graph(self):
        naive, indexed = assert_equivalent(
            ranieri_graph(), running_example_rules(), running_example_constraints()
        )
        assert len(naive.violations) == 1

    def test_extended_graph_two_round_chaining(self):
        naive, indexed = assert_equivalent(
            ranieri_extended_graph(),
            running_example_rules(),
            running_example_constraints(),
        )
        assert naive.rounds >= 2

    def test_constraints_only(self):
        assert_equivalent(ranieri_graph(), rules=(), constraints=running_example_constraints())

    def test_max_rounds_truncation(self):
        assert_equivalent(
            ranieri_extended_graph(),
            running_example_rules(),
            running_example_constraints(),
            max_rounds=1,
        )


# --------------------------------------------------------------------------- #
# FootballDB
# --------------------------------------------------------------------------- #
class TestFootballDBEquivalence:
    @pytest.mark.parametrize("noise_ratio", [0.0, 0.5])
    def test_small_footballdb(self, noise_ratio):
        dataset = generate_footballdb(
            FootballDBConfig(scale=0.01, noise_ratio=noise_ratio, seed=2017)
        )
        pack = sports_pack()
        assert_equivalent(dataset.graph, pack.rules, pack.constraints)

    def test_footballdb_with_chained_rules(self):
        """Deep chaining is the semi-naive delta's hardest correctness case."""
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.5, seed=7))
        graph = dataset.graph.copy(name="footballdb-chained")
        from repro.datasets.footballdb import TEAM_NAMES

        for team in TEAM_NAMES[:10]:
            graph.add((team, "locatedIn", f"{team}City", (1940, 2020), 0.95))
        chain_predicates = ["locatedIn", "inCity", "inRegion", "inCountry"]
        chain_rules = [
            RuleBuilder(f"geo{index}")
            .body(quad("y", source, "z", "t"))
            .head(quad("y", target, "z", "t"))
            .weight(1.2)
            .build()
            for index, (source, target) in enumerate(zip(chain_predicates, chain_predicates[1:]))
        ]
        pack = sports_pack()
        naive, indexed = assert_equivalent(
            graph, list(pack.rules) + chain_rules, pack.constraints, max_rounds=10
        )
        assert naive.rounds >= 3


# --------------------------------------------------------------------------- #
# Randomized noisy graphs
# --------------------------------------------------------------------------- #
def random_sports_graph(seed: int, facts: int = 120) -> TemporalKnowledgeGraph:
    """A random UTKG over the sports schema (dense enough for conflicts)."""
    rng = random.Random(seed)
    players = [f"Player{index}" for index in range(facts // 6)]
    teams = [f"Team{index}" for index in range(5)]
    graph = TemporalKnowledgeGraph(name=f"random-{seed}")
    for _ in range(facts):
        player = rng.choice(players)
        kind = rng.random()
        start = rng.randint(1950, 2010)
        end = start + rng.randint(0, 12)
        confidence = round(rng.uniform(0.3, 1.0), 2)
        if kind < 0.5:
            graph.add((player, "playsFor", rng.choice(teams), (start, end), confidence))
        elif kind < 0.7:
            graph.add((player, "coach", rng.choice(teams), (start, end), confidence))
        elif kind < 0.9:
            birth = rng.randint(1930, 1995)
            graph.add((player, "birthDate", str(birth), (birth, birth), confidence))
        else:
            graph.add(
                (
                    rng.choice(teams),
                    "locatedIn",
                    f"City{rng.randint(0, 3)}",
                    (1940, 2020),
                    confidence,
                )
            )
    return graph


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_noisy_graphs(self, seed):
        graph = random_sports_graph(seed)
        assert_equivalent(graph, running_example_rules(), running_example_constraints())

    @pytest.mark.parametrize("seed", [11, 12])
    def test_random_graphs_sports_pack(self, seed):
        graph = random_sports_graph(seed, facts=150)
        pack = sports_pack()
        assert_equivalent(graph, pack.rules, pack.constraints)

    def test_empty_graph(self):
        assert_equivalent(
            TemporalKnowledgeGraph(name="empty"),
            running_example_rules(),
            running_example_constraints(),
        )


# --------------------------------------------------------------------------- #
# Engine selection API
# --------------------------------------------------------------------------- #
class TestEngineSelection:
    def test_default_grounder_is_indexed(self):
        assert Grounder is IndexedGrounder
        assert set(GROUNDING_ENGINES) == {"indexed", "naive", "incremental", "vectorized"}

    def test_make_grounder_dispatch(self):
        graph = ranieri_graph()
        assert isinstance(make_grounder("indexed", graph), IndexedGrounder)
        assert isinstance(make_grounder("naive", graph), NaiveGrounder)

    def test_make_grounder_unknown_engine(self):
        with pytest.raises(GroundingError):
            make_grounder("bogus", ranieri_graph())

    def test_ground_function_engines_agree(self):
        graph = ranieri_graph()
        rules = running_example_rules()
        constraints = running_example_constraints()
        indexed = ground(graph, rules, constraints, engine="indexed")
        naive = ground(graph, rules, constraints, engine="naive")
        assert (indexed.program.canonical_signature() == naive.program.canonical_signature())

    def test_find_conflicts_engines_agree(self):
        graph = ranieri_graph()
        constraints = running_example_constraints()
        assert find_conflicts(graph, constraints, engine="indexed") == find_conflicts(
            graph, constraints, engine="naive"
        )

    def test_canonical_signature_mixed_hard_soft_clauses(self):
        """Hard (weight=None) and soft clauses over the same facts must sort.

        Regression: canonical_signature() used to raise TypeError comparing
        None to float when two clauses tied on their literal sets.
        """
        from repro.logic.builder import ConstraintBuilder, disjoint, not_equal, quad

        graph = TemporalKnowledgeGraph(name="hard-soft")
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Napoli", (2001, 2003), 0.6))

        def c2_like(name, weight):
            builder = (
                ConstraintBuilder(name)
                .body(quad("x", "coach", "y", "t"), quad("x", "coach", "z", "t2"))
                .when(not_equal("y", "z"))
                .require(disjoint("t", "t2"))
            )
            builder = builder.hard() if weight is None else builder.soft(weight)
            return builder.build()

        constraints = [c2_like("hardC2", None), c2_like("softC2", 1.5)]
        naive, indexed = assert_equivalent(graph, rules=(), constraints=constraints)
        assert len(naive.violations) == 2
        # The signature is well-defined and engine-independent.
        assert (naive.program.canonical_signature() == indexed.program.canonical_signature())
