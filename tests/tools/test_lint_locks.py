"""The serve-tier lock-discipline checker (tools/lint_locks.py)."""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(_REPO_ROOT / "tools"))

from lint_locks import (  # noqa: E402
    GUARDED_ATTRS,
    check_file,
    check_source,
    iter_python_files,
    main,
)

SERVE_DIR = _REPO_ROOT / "src" / "repro" / "serve"


def _violations(source: str, path: str = "sessions.py"):
    return check_source(textwrap.dedent(source), path)


class TestDetection:
    def test_unlocked_attribute_assignment_is_flagged(self):
        found = _violations(
            """
            class Pool:
                def evict(self):
                    self.evicted_total += 1
            """
        )
        assert [v.attr for v in found] == ["evicted_total"]
        assert found[0].context == "Pool.evict"

    def test_unlocked_mutator_call_is_flagged(self):
        found = _violations(
            """
            class Pool:
                def drop(self, sid):
                    self._entries.pop(sid, None)
            """
        )
        assert [v.attr for v in found] == ["_entries"]

    def test_unlocked_subscript_store_is_flagged(self):
        found = _violations(
            """
            class Pool:
                def put(self, sid, entry):
                    self._entries[sid] = entry
            """
        )
        assert [v.attr for v in found] == ["_entries"]

    def test_entry_flag_mutation_outside_its_lock_is_flagged(self):
        found = _violations(
            """
            class Service:
                def delete(self, entry):
                    entry.closed = True
            """
        )
        assert [v.attr for v in found] == ["closed"]

    def test_reads_are_never_flagged(self):
        assert not _violations(
            """
            class Pool:
                def depth(self):
                    return len(self._entries)
            """
        )


class TestLockRecognition:
    def test_with_lock_block_passes(self):
        assert not _violations(
            """
            class Pool:
                def evict(self):
                    with self._lock:
                        self._entries.popitem(last=False)
                        self.evicted_total += 1
            """
        )

    def test_condition_variable_counts_as_the_lock(self):
        assert not _violations(
            """
            class Batcher:
                def close(self):
                    with self._wakeup:
                        self._closed = True
            """
        )

    def test_manual_acquire_with_finally_release_passes(self):
        # The deadline-bounded pattern server._apply_edits uses.
        assert not _violations(
            """
            class Service:
                def delete(self, entry):
                    self._acquire(entry)
                    try:
                        entry.closed = True
                    finally:
                        entry.lock.release()
            """
        )

    def test_try_without_lock_release_does_not_pass(self):
        found = _violations(
            """
            class Service:
                def delete(self, entry):
                    try:
                        entry.closed = True
                    finally:
                        entry.session.close()
            """
        )
        assert [v.attr for v in found] == ["closed"]


class TestExemptions:
    def test_init_is_exempt(self):
        assert not _violations(
            """
            class Pool:
                def __init__(self):
                    self._entries = {}
                    self.created_total = 0
            """
        )

    def test_locked_suffix_methods_are_exempt(self):
        assert not _violations(
            """
            class Wal:
                def _sync_locked(self):
                    self._unsynced = 0
            """
        )

    def test_caller_holds_lock_allowlist(self):
        assert not _violations(
            """
            class Wal:
                def _maybe_sync(self):
                    self._unsynced += 1
            """
        )

    def test_reviewed_site_allowlist_is_file_specific(self):
        source = """
        class Pool:
            def restore(self, entry, edits_applied):
                entry.edits_applied = edits_applied
        """
        assert not _violations(source, path="sessions.py")
        assert _violations(source, path="server.py")  # not allowlisted there

    def test_unguarded_attributes_are_ignored(self):
        assert not _violations(
            """
            class Pool:
                def note(self):
                    self.last_seen = 1
            """
        )


class TestRealServeTree:
    def test_the_serve_package_is_clean(self):
        violations = []
        for path in iter_python_files([str(SERVE_DIR)]):
            violations.extend(check_file(path))
        assert not violations, [v.render() for v in violations]

    def test_main_exit_code_is_zero_on_the_real_tree(self, capsys):
        assert main([str(SERVE_DIR)]) == 0

    def test_main_counts_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("class Pool:\n    def evict(self):\n        self.evicted_total += 1\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "evicted_total" in out

    def test_guarded_set_covers_the_serve_state(self):
        # Contract check: the attributes this PR's docs promise are guarded.
        assert {"_entries", "closed", "_handle", "_next_seq", "_queue"} <= GUARDED_ATTRS
