"""Shared fixtures for the TeCoRe test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the shared generators in tests/properties/ importable from any test
# module (the test tree has no packages).
_PROPERTIES_DIR = str(Path(__file__).resolve().parent / "properties")
if _PROPERTIES_DIR not in sys.path:
    sys.path.insert(0, _PROPERTIES_DIR)

from repro import TeCoRe
from repro.datasets import (
    FootballDBConfig,
    generate_footballdb,
    ranieri_extended_graph,
    ranieri_graph,
)
from repro.kg import TemporalKnowledgeGraph
from repro.logic import ground, running_example_constraints, running_example_rules


@pytest.fixture
def ranieri():
    """The paper's Figure 1 UTKG (5 facts)."""
    return ranieri_graph()


@pytest.fixture
def ranieri_extended():
    """Figure 1 plus club locations (rules f1 and f2 both fire)."""
    return ranieri_extended_graph()


@pytest.fixture
def running_example_grounding(ranieri):
    """Grounding of the running example with rules f1-f3 and constraints c1-c3."""
    return ground(ranieri, running_example_rules(), running_example_constraints())


@pytest.fixture
def running_example_system():
    """A TeCoRe instance configured exactly as the paper's walk-through."""
    return TeCoRe.from_pack("running-example", solver="nrockit")


@pytest.fixture(scope="session")
def small_noisy_footballdb():
    """A small deterministic FootballDB dataset with 50% planted noise."""
    return generate_footballdb(FootballDBConfig(scale=0.005, noise_ratio=0.5, seed=7))


@pytest.fixture
def empty_graph():
    return TemporalKnowledgeGraph(name="empty")
