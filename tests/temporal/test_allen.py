"""Unit tests for Allen's interval algebra."""

import pytest

from repro.temporal import (
    ALL_RELATIONS,
    AllenRelation,
    TimeInterval,
    before,
    compose,
    disjoint,
    evaluate_predicate,
    overlaps,
    relation_between,
)
from repro.temporal.allen import CONSTRAINT_PREDICATES, shares_point


class TestBasicRelations:
    def test_thirteen_relations_exist(self):
        assert len(ALL_RELATIONS) == 13

    def test_before_after(self):
        a, b = TimeInterval(1, 2), TimeInterval(4, 6)
        assert AllenRelation.BEFORE.holds(a, b)
        assert AllenRelation.AFTER.holds(b, a)

    def test_meets_met_by(self):
        # Discrete reading: "meets" is adjacency with no gap and no shared point.
        a, b = TimeInterval(1, 2), TimeInterval(3, 6)
        assert AllenRelation.MEETS.holds(a, b)
        assert AllenRelation.MET_BY.holds(b, a)

    def test_shared_boundary_point_is_overlap_not_meets(self):
        # Closed intervals sharing their boundary year overlap in the discrete
        # algebra (they are simultaneously true at that year).
        a, b = TimeInterval(1, 3), TimeInterval(3, 6)
        assert AllenRelation.OVERLAPS.holds(a, b)
        assert not AllenRelation.MEETS.holds(a, b)

    def test_overlaps_strict(self):
        a, b = TimeInterval(1, 4), TimeInterval(3, 6)
        assert AllenRelation.OVERLAPS.holds(a, b)
        assert not AllenRelation.OVERLAPS.holds(b, a)

    def test_during_contains(self):
        inner, outer = TimeInterval(3, 4), TimeInterval(1, 6)
        assert AllenRelation.DURING.holds(inner, outer)
        assert AllenRelation.CONTAINS.holds(outer, inner)

    def test_starts_finishes(self):
        assert AllenRelation.STARTS.holds(TimeInterval(1, 3), TimeInterval(1, 6))
        assert AllenRelation.FINISHES.holds(TimeInterval(4, 6), TimeInterval(1, 6))

    def test_equals(self):
        assert AllenRelation.EQUALS.holds(TimeInterval(2, 5), TimeInterval(2, 5))

    def test_inverse_pairs(self):
        for relation in ALL_RELATIONS:
            assert relation.inverse.inverse is relation

    def test_equals_is_self_inverse(self):
        assert AllenRelation.EQUALS.inverse is AllenRelation.EQUALS


class TestRelationBetween:
    def test_exactly_one_relation_holds(self):
        intervals = [TimeInterval(s, e) for s in range(0, 5) for e in range(s, 5)]
        for a in intervals:
            for b in intervals:
                holding = [relation for relation in ALL_RELATIONS if relation.holds(a, b)]
                assert len(holding) == 1
                assert relation_between(a, b) is holding[0]

    def test_inverse_consistency(self):
        a, b = TimeInterval(1, 4), TimeInterval(2, 9)
        assert relation_between(a, b).inverse is relation_between(b, a)


class TestConstraintPredicates:
    def test_inclusive_overlaps_at_boundary(self):
        # The paper's overlaps/disjoint are inclusive: sharing one point counts.
        assert overlaps(TimeInterval(2000, 2004), TimeInterval(2004, 2010))
        assert not disjoint(TimeInterval(2000, 2004), TimeInterval(2004, 2010))

    def test_paper_c2_conflict(self):
        # Chelsea [2000,2004] vs Napoli [2001,2003] violate disjointness.
        assert not disjoint(TimeInterval(2000, 2004), TimeInterval(2001, 2003))

    def test_paper_c2_no_conflict(self):
        # Chelsea [2000,2004] vs Leicester [2015,2017] are fine.
        assert disjoint(TimeInterval(2000, 2004), TimeInterval(2015, 2017))

    def test_before_predicate(self):
        assert before(TimeInterval(1951, 1951), TimeInterval(2000, 2004))
        assert not before(TimeInterval(1951, 2017), TimeInterval(2000, 2004))

    def test_evaluate_predicate_by_name(self):
        assert evaluate_predicate("overlaps", TimeInterval(1, 5), TimeInterval(3, 9))
        assert evaluate_predicate("within", TimeInterval(3, 4), TimeInterval(1, 9))
        with pytest.raises(KeyError):
            evaluate_predicate("sometimeNear", TimeInterval(1, 2), TimeInterval(3, 4))

    def test_all_predicates_callable(self):
        a, b = TimeInterval(1, 4), TimeInterval(2, 6)
        for name, predicate in CONSTRAINT_PREDICATES.items():
            assert isinstance(predicate(a, b), bool), name

    def test_shares_point(self):
        assert shares_point(AllenRelation.OVERLAPS)
        assert shares_point(AllenRelation.EQUALS)
        assert not shares_point(AllenRelation.BEFORE)
        # For closed discrete intervals MEETS shares its boundary point, but the
        # classic algebra classifies it as non-sharing; we follow the classic table.
        assert not shares_point(AllenRelation.MEETS)


class TestComposition:
    def test_before_before_is_before(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.BEFORE) == frozenset(
            {AllenRelation.BEFORE}
        )

    def test_equals_is_identity(self):
        for relation in ALL_RELATIONS:
            assert compose(AllenRelation.EQUALS, relation) == frozenset({relation})
            assert compose(relation, AllenRelation.EQUALS) == frozenset({relation})

    def test_composition_is_sound(self):
        # Spot-check: every concrete triple must be consistent with the table.
        intervals = [TimeInterval(s, e) for s in range(0, 4) for e in range(s, 4)]
        for a in intervals:
            for b in intervals:
                for c in intervals:
                    r1 = relation_between(a, b)
                    r2 = relation_between(b, c)
                    assert relation_between(a, c) in compose(r1, r2)

    def test_during_composed_with_contains_is_wide(self):
        result = compose(AllenRelation.DURING, AllenRelation.CONTAINS)
        assert AllenRelation.EQUALS in result
        assert AllenRelation.DURING in result
        assert len(result) > 3
