"""Unit tests for closed discrete time intervals."""

import pytest

from repro.errors import InvalidIntervalError
from repro.temporal import TimeInterval, span_of, total_coverage


class TestConstruction:
    def test_valid_interval(self):
        interval = TimeInterval(2000, 2004)
        assert interval.start == 2000
        assert interval.end == 2004

    def test_instant(self):
        instant = TimeInterval.instant(1951)
        assert instant.start == instant.end == 1951
        assert instant.is_instant()

    def test_reversed_bounds_rejected(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(2005, 2000)

    def test_duration_is_inclusive(self):
        assert TimeInterval(2000, 2004).duration == 5
        assert TimeInterval.instant(3).duration == 1

    def test_equality_and_hash(self):
        assert TimeInterval(1, 2) == TimeInterval(1, 2)
        assert hash(TimeInterval(1, 2)) == hash(TimeInterval(1, 2))
        assert TimeInterval(1, 2) != TimeInterval(1, 3)

    def test_ordering(self):
        assert sorted([TimeInterval(3, 4), TimeInterval(1, 9), TimeInterval(1, 2)]) == [
            TimeInterval(1, 2),
            TimeInterval(1, 9),
            TimeInterval(3, 4),
        ]


class TestParse:
    def test_parse_paper_syntax(self):
        assert TimeInterval.parse("[2000,2004]") == TimeInterval(2000, 2004)

    def test_parse_dash_syntax(self):
        assert TimeInterval.parse("2000-2004") == TimeInterval(2000, 2004)

    def test_parse_instant(self):
        assert TimeInterval.parse("1951") == TimeInterval(1951, 1951)

    def test_parse_with_spaces(self):
        assert TimeInterval.parse("[ 1984 , 1986 ]") == TimeInterval(1984, 1986)

    def test_str_round_trip(self):
        interval = TimeInterval(2015, 2017)
        assert TimeInterval.parse(str(interval)) == interval


class TestMembershipAndIteration:
    def test_contains_point(self):
        interval = TimeInterval(2000, 2004)
        assert 2000 in interval
        assert 2004 in interval
        assert 2005 not in interval
        assert 1999 not in interval

    def test_contains_rejects_non_ints(self):
        assert "2001" not in TimeInterval(2000, 2004)
        assert True not in TimeInterval(0, 1)

    def test_iteration_and_points(self):
        assert list(TimeInterval(1, 4)) == [1, 2, 3, 4]
        assert TimeInterval(1, 4).points() == [1, 2, 3, 4]


class TestRelations:
    def test_overlaps_inclusive_boundary(self):
        assert TimeInterval(2000, 2004).overlaps(TimeInterval(2004, 2010))
        assert not TimeInterval(2000, 2004).overlaps(TimeInterval(2005, 2010))

    def test_disjoint_is_complement_of_overlaps(self):
        a, b = TimeInterval(1, 3), TimeInterval(5, 7)
        assert a.disjoint(b)
        assert not a.overlaps(b)

    def test_contains_interval(self):
        assert TimeInterval(2000, 2004).contains(TimeInterval(2001, 2003))
        assert not TimeInterval(2001, 2003).contains(TimeInterval(2000, 2004))
        assert TimeInterval(2000, 2004).contains(TimeInterval(2000, 2004))

    def test_strictly_before_after(self):
        assert TimeInterval(1984, 1986).strictly_before(TimeInterval(2000, 2004))
        assert TimeInterval(2000, 2004).strictly_after(TimeInterval(1984, 1986))

    def test_meets_and_adjacent(self):
        assert TimeInterval(1, 3).meets(TimeInterval(3, 5))
        assert TimeInterval(1, 3).adjacent(TimeInterval(4, 6))
        assert not TimeInterval(1, 3).adjacent(TimeInterval(5, 6))


class TestOperations:
    def test_intersection_of_paper_conflict(self):
        # Facts (1) and (5) of the running example overlap in 2001-2003.
        assert TimeInterval(2000, 2004).intersect(TimeInterval(2001, 2003)) == TimeInterval(
            2001, 2003
        )

    def test_intersection_empty(self):
        assert TimeInterval(1, 2).intersect(TimeInterval(4, 5)) is None

    def test_union_overlapping(self):
        assert TimeInterval(1, 5).union(TimeInterval(3, 8)) == TimeInterval(1, 8)

    def test_union_adjacent(self):
        assert TimeInterval(1, 3).union(TimeInterval(4, 6)) == TimeInterval(1, 6)

    def test_union_disjoint_is_none(self):
        assert TimeInterval(1, 2).union(TimeInterval(9, 10)) is None

    def test_span_ignores_gaps(self):
        assert TimeInterval(1, 2).span(TimeInterval(9, 10)) == TimeInterval(1, 10)

    def test_minus_middle_split(self):
        pieces = TimeInterval(1, 10).minus(TimeInterval(4, 6))
        assert pieces == [TimeInterval(1, 3), TimeInterval(7, 10)]

    def test_minus_no_overlap(self):
        assert TimeInterval(1, 3).minus(TimeInterval(5, 9)) == [TimeInterval(1, 3)]

    def test_minus_total(self):
        assert TimeInterval(4, 6).minus(TimeInterval(1, 10)) == []

    def test_shift(self):
        assert TimeInterval(2000, 2004).shift(10) == TimeInterval(2010, 2014)

    def test_clamp(self):
        assert TimeInterval(1990, 2010).clamp(2000, 2005) == TimeInterval(2000, 2005)
        assert TimeInterval(1990, 1995).clamp(2000, 2005) is None


class TestAggregates:
    def test_span_of(self):
        assert span_of([TimeInterval(3, 4), TimeInterval(1, 2)]) == TimeInterval(1, 4)
        assert span_of([]) is None

    def test_total_coverage_merges_overlaps(self):
        assert total_coverage([TimeInterval(1, 3), TimeInterval(2, 5)]) == 5

    def test_total_coverage_disjoint(self):
        assert total_coverage([TimeInterval(1, 2), TimeInterval(10, 11)]) == 4
