"""Unit tests for the discrete time domain."""

import pytest

from repro.errors import TimeDomainError
from repro.temporal import DEFAULT_DOMAIN, TimeDomain


class TestTimeDomain:
    def test_contains(self):
        domain = TimeDomain(1950, 2020)
        assert 1950 in domain
        assert 2020 in domain
        assert 1949 not in domain
        assert 2021 not in domain

    def test_contains_rejects_non_integers(self):
        domain = TimeDomain(0, 10)
        assert "5" not in domain
        assert 5.0 not in domain
        assert True not in domain

    def test_reversed_domain_rejected(self):
        with pytest.raises(TimeDomainError):
            TimeDomain(2000, 1990)

    def test_len_and_iteration(self):
        domain = TimeDomain(1, 5)
        assert len(domain) == 5
        assert list(domain) == [1, 2, 3, 4, 5]

    def test_validate(self):
        domain = TimeDomain(0, 10)
        assert domain.validate(5) == 5
        with pytest.raises(TimeDomainError):
            domain.validate(11)

    def test_clamp(self):
        domain = TimeDomain(0, 10)
        assert domain.clamp(-5) == 0
        assert domain.clamp(15) == 10
        assert domain.clamp(7) == 7

    def test_expand(self):
        domain = TimeDomain(2000, 2010)
        wider = domain.expand(1990)
        assert 1990 in wider
        assert wider.end == 2010
        assert domain.expand(2005) is domain

    def test_spanning(self):
        domain = TimeDomain.spanning([1984, 2017, 1951])
        assert domain.start == 1951
        assert domain.end == 2017

    def test_spanning_empty_rejected(self):
        with pytest.raises(TimeDomainError):
            TimeDomain.spanning([])

    def test_default_domain_covers_modern_years(self):
        assert 1951 in DEFAULT_DOMAIN
        assert 2017 in DEFAULT_DOMAIN
