"""Unit tests for temporal arithmetic predicates and interval expressions."""

import pytest

from repro.errors import LogicError
from repro.temporal import (
    IntervalExpression,
    TimeInterval,
    compare,
    difference,
    gap_between,
)
from repro.temporal.arithmetic import INTERVAL_BINARY_FUNCTIONS, INTERVAL_FUNCTIONS


class TestCompare:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("<", 1, 2, True),
            ("<", 2, 2, False),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 2, 3, False),
            ("=", 5, 5, True),
            ("==", 5, 6, False),
            ("!=", 5, 6, True),
        ],
    )
    def test_operators(self, op, left, right, expected):
        assert compare(op, left, right) is expected

    def test_unknown_operator(self):
        with pytest.raises(LogicError):
            compare("<>", 1, 2)


class TestIntervalExpression:
    def test_variable(self):
        bindings = {"t": TimeInterval(2000, 2004)}
        assert IntervalExpression.variable("t").evaluate(bindings) == TimeInterval(2000, 2004)

    def test_intersection_of_paper_rule_f2(self):
        bindings = {"t": TimeInterval(2000, 2004), "t2": TimeInterval(2001, 2010)}
        expression = IntervalExpression.intersection("t", "t2")
        assert expression.evaluate(bindings) == TimeInterval(2001, 2004)

    def test_intersection_empty_returns_none(self):
        bindings = {"t": TimeInterval(1, 2), "t2": TimeInterval(5, 6)}
        assert IntervalExpression.intersection("t", "t2").evaluate(bindings) is None

    def test_union_spans(self):
        bindings = {"a": TimeInterval(1, 2), "b": TimeInterval(5, 6)}
        assert IntervalExpression.union("a", "b").evaluate(bindings) == TimeInterval(1, 6)

    def test_shift(self):
        bindings = {"t": TimeInterval(2000, 2002)}
        assert IntervalExpression.shift("t", 3).evaluate(bindings) == TimeInterval(2003, 2005)

    def test_unbound_variable_gives_none(self):
        assert IntervalExpression.variable("missing").evaluate({}) is None

    def test_str_forms(self):
        assert "∩" in str(IntervalExpression.intersection("t", "t2"))
        assert str(IntervalExpression.variable("t")) == "t"


class TestIntervalFunctions:
    def test_unary_functions(self):
        interval = TimeInterval(2000, 2004)
        assert INTERVAL_FUNCTIONS["start"](interval) == 2000
        assert INTERVAL_FUNCTIONS["end"](interval) == 2004
        assert INTERVAL_FUNCTIONS["duration"](interval) == 5

    def test_gap_between(self):
        assert gap_between(TimeInterval(1, 3), TimeInterval(7, 9)) == 3
        assert gap_between(TimeInterval(7, 9), TimeInterval(1, 3)) == 3
        assert gap_between(TimeInterval(1, 5), TimeInterval(3, 9)) == 0

    def test_difference_uses_start_points(self):
        # The paper's f3 reading: age at the start of an engagement.
        plays = TimeInterval(1984, 1986)
        birth = TimeInterval(1951, 2017)
        assert difference(plays, birth) == 33

    def test_binary_function_table(self):
        assert set(INTERVAL_BINARY_FUNCTIONS) == {"gap", "diff"}
