"""Unit tests for temporal coalescing."""

from repro.temporal import TimeInterval, coalesce_intervals, coalesce_weighted, group_and_coalesce


class TestCoalesceIntervals:
    def test_merges_overlapping(self):
        assert coalesce_intervals([TimeInterval(1, 5), TimeInterval(3, 8)]) == [TimeInterval(1, 8)]

    def test_merges_adjacent(self):
        assert coalesce_intervals([TimeInterval(1, 3), TimeInterval(4, 6)]) == [TimeInterval(1, 6)]

    def test_keeps_gaps(self):
        result = coalesce_intervals([TimeInterval(1, 2), TimeInterval(5, 6)])
        assert result == [TimeInterval(1, 2), TimeInterval(5, 6)]

    def test_unsorted_input(self):
        result = coalesce_intervals([TimeInterval(5, 6), TimeInterval(1, 2), TimeInterval(2, 5)])
        assert result == [TimeInterval(1, 6)]

    def test_empty(self):
        assert coalesce_intervals([]) == []

    def test_preserves_coverage(self):
        intervals = [
            TimeInterval(1, 4), TimeInterval(2, 3), TimeInterval(8, 9), TimeInterval(9, 12)
        ]
        merged = coalesce_intervals(intervals)
        covered = {point for interval in intervals for point in interval}
        merged_points = {point for interval in merged for point in interval}
        assert merged_points == covered


class TestCoalesceWeighted:
    def test_keeps_max_confidence_by_default(self):
        result = coalesce_weighted([(TimeInterval(1, 3), 0.4), (TimeInterval(2, 6), 0.9)])
        assert result == [(TimeInterval(1, 6), 0.9)]

    def test_custom_combiner(self):
        result = coalesce_weighted(
            [(TimeInterval(1, 3), 0.4), (TimeInterval(2, 6), 0.6)], combine=lambda a, b: a + b
        )
        assert result == [(TimeInterval(1, 6), 1.0)]

    def test_disjoint_kept_separate(self):
        result = coalesce_weighted([(TimeInterval(1, 2), 0.5), (TimeInterval(9, 10), 0.7)])
        assert len(result) == 2


class TestGroupAndCoalesce:
    def test_groups_by_key(self):
        items = [
            ("chelsea", TimeInterval(2000, 2002)),
            ("chelsea", TimeInterval(2002, 2004)),
            ("leicester", TimeInterval(2015, 2017)),
        ]
        grouped = group_and_coalesce(items)
        assert grouped["chelsea"] == [TimeInterval(2000, 2004)]
        assert grouped["leicester"] == [TimeInterval(2015, 2017)]
