"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import ranieri_graph
from repro.kg.io import save_graph


@pytest.fixture
def ranieri_file(tmp_path):
    path = tmp_path / "ranieri.tq"
    save_graph(ranieri_graph(), path)
    return path


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "rules.dl"
    path.write_text(
        "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w=2.5\n"
        "c2: quad(x, coach, y, t) & quad(x, coach, z, t2) & y != z -> disjoint(t, t2)\n",
        encoding="utf-8",
    )
    return path


class TestListingCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "footballdb" in out and "ranieri" in out

    def test_solvers(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "nrockit" in out and "npsl" in out

    def test_packs(self, capsys):
        assert main(["packs"]) == 0
        out = capsys.readouterr().out
        assert "running-example" in out and "sports" in out


class TestStats:
    def test_stats_for_registered_dataset(self, capsys):
        assert main(["stats", "--dataset", "ranieri"]) == 0
        out = capsys.readouterr().out
        assert "5 facts" in out

    def test_stats_for_graph_file(self, capsys, ranieri_file):
        assert main(["stats", "--graph", str(ranieri_file)]) == 0
        assert "coach" in capsys.readouterr().out

    def test_stats_requires_input(self, capsys):
        assert main(["stats"]) == 1
        assert "error" in capsys.readouterr().err


class TestDetect:
    def test_detect_with_pack(self, capsys):
        assert main(["detect", "--dataset", "ranieri", "--pack", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "conflicting facts" in out

    def test_detect_json(self, capsys):
        assert main(["detect", "--dataset", "ranieri", "--pack", "running-example", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == 1
        assert payload["conflicting_facts"] == 2

    def test_detect_requires_constraints(self, capsys):
        assert main(["detect", "--dataset", "ranieri"]) == 1
        assert "error" in capsys.readouterr().err


class TestResolve:
    def test_resolve_running_example(self, capsys):
        exit_code = main(
            ["resolve", "--dataset", "ranieri", "--pack", "running-example", "--solver", "nrockit"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Napoli" in out
        assert "removed facts" in out

    def test_resolve_json_output(self, capsys):
        exit_code = main(["resolve", "--dataset", "ranieri", "--pack", "running-example", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"]["removed_facts"] == 1

    @pytest.mark.parametrize("engine", ["vectorized", "incremental", "naive"])
    def test_resolve_engine_selection_matches_default(self, capsys, engine):
        baseline_code = main(
            ["resolve", "--dataset", "ranieri", "--pack", "running-example", "--json"]
        )
        baseline = json.loads(capsys.readouterr().out)
        exit_code = main(
            [
                "resolve", "--dataset", "ranieri", "--pack", "running-example",
                "--engine", engine, "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert baseline_code == exit_code == 0

        def stable(stats):
            return {key: value for key, value in stats.items() if key != "runtime_seconds"}

        assert stable(payload["statistics"]) == stable(baseline["statistics"])
        assert payload["removed_facts"] == baseline["removed_facts"]

    def test_resolve_from_files(self, capsys, ranieri_file, program_file):
        exit_code = main(
            [
                "resolve",
                "--graph", str(ranieri_file),
                "--program", str(program_file),
                "--solver", "npsl",
            ]
        )
        assert exit_code == 0
        assert "Napoli" in capsys.readouterr().out

    def test_resolve_with_threshold(self, capsys):
        exit_code = main(
            [
                "resolve",
                "--dataset", "ranieri",
                "--pack", "running-example",
                "--threshold", "0.95",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"]["inferred_facts"] == 0

    def test_resolve_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "resolve",
                    "--dataset",
                    "ranieri",
                    "--pack",
                    "running-example",
                    "--solver",
                    "gurobi",
                ]
            )


class TestDecompositionFlags:
    def test_resolve_with_decompose(self, capsys):
        exit_code = main(
            [
                "resolve",
                "--dataset", "ranieri",
                "--pack", "running-example",
                "--decompose",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"]["removed_facts"] == 1

    def test_resolve_decompose_matches_monolithic(self, capsys):
        base = ["resolve", "--dataset", "ranieri", "--pack", "running-example", "--json"]
        assert main(base) == 0
        monolithic = json.loads(capsys.readouterr().out)
        assert main(base + ["--decompose", "--jobs", "2"]) == 0
        decomposed = json.loads(capsys.readouterr().out)
        assert decomposed["statistics"]["objective"] == monolithic["statistics"]["objective"]
        assert decomposed["removed_facts"] == monolithic["removed_facts"]

    def test_no_decompose_flag_accepted(self, capsys):
        exit_code = main(
            ["resolve", "--dataset", "ranieri", "--pack", "running-example", "--no-decompose"]
        )
        assert exit_code == 0
        assert "Napoli" in capsys.readouterr().out

    def test_bad_jobs_value_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "resolve",
                    "--dataset", "ranieri",
                    "--pack", "running-example",
                    "--jobs", "many",
                ]
            )
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_nonpositive_jobs_reports_error(self, capsys):
        exit_code = main(
            [
                "resolve",
                "--dataset", "ranieri",
                "--pack", "running-example",
                "--decompose",
                "--jobs", "0",
            ]
        )
        assert exit_code == 1
        assert "jobs" in capsys.readouterr().err


class TestResolveBatch:
    def test_resolve_batch_text_output(self, capsys, ranieri_file, program_file):
        exit_code = main(
            [
                "resolve-batch",
                str(ranieri_file), str(ranieri_file),
                "--program", str(program_file),
                "--solver", "npsl",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "batch: 2 graphs" in out
        assert "graphs/s" in out

    def test_resolve_batch_json_with_decomposition(self, capsys, ranieri_file):
        exit_code = main(
            [
                "resolve-batch",
                str(ranieri_file),
                "--pack", "running-example",
                "--decompose",
                "--jobs", "2",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 1
        assert payload["results"][0]["statistics"]["removed_facts"] == 1

    def test_resolve_batch_requires_program(self, capsys, ranieri_file):
        assert main(["resolve-batch", str(ranieri_file)]) == 1
        assert "error" in capsys.readouterr().err

    def test_resolve_batch_incremental_matches_plain(self, capsys, ranieri_file, tmp_path):
        from repro.datasets import ranieri_graph
        from repro.kg.io import save_graph

        edited = ranieri_graph().copy(name="ranieri-edited")
        edited.remove(("CR", "coach", "Napoli", (2001, 2003)))
        edited_file = tmp_path / "ranieri-edited.tq"
        save_graph(edited, edited_file)

        def run(extra):
            exit_code = main(
                [
                    "resolve-batch",
                    str(ranieri_file), str(edited_file),
                    "--pack", "running-example",
                    "--json",
                    *extra,
                ]
            )
            assert exit_code == 0
            return json.loads(capsys.readouterr().out)

        plain = run([])
        incremental = run(["--incremental"])
        assert len(incremental["results"]) == 2
        for one, two in zip(plain["results"], incremental["results"]):
            assert one["statistics"]["removed_facts"] == two["statistics"]["removed_facts"]
            assert one["statistics"]["objective"] == two["statistics"]["objective"]
        assert incremental["results"][1]["delta"]["facts_removed"] == 1


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "edits.stream"
    path.write_text(
        "- CR coach Napoli [2001,2003] 0.6\n"
        "resolve\n"
        "+ CR coach Napoli [2001,2003] 0.6\n",
        encoding="utf-8",
    )
    return path


class TestWatch:
    def test_watch_text_output(self, capsys, ranieri_file, stream_file):
        exit_code = main(
            [
                "watch", str(stream_file),
                "--graph", str(ranieri_file),
                "--pack", "running-example",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "initial" in out
        assert "step 1" in out and "step 2" in out
        assert "watched 2 steps" in out
        assert "cache" in out

    def test_watch_json_stream(self, capsys, ranieri_file, stream_file):
        exit_code = main(
            [
                "watch", str(stream_file),
                "--graph", str(ranieri_file),
                "--pack", "running-example",
                "--json",
            ]
        )
        assert exit_code == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [entry["step"] for entry in lines] == [0, 1, 2]
        assert lines[1]["delta"]["facts_removed"] == 1
        # Step 2 restores the removed fact: the statistics match step 0.
        assert (lines[2]["statistics"]["objective"] == lines[0]["statistics"]["objective"])

    def test_watch_warm_start_flag(self, capsys, ranieri_file, stream_file):
        exit_code = main(
            [
                "watch", str(stream_file),
                "--graph", str(ranieri_file),
                "--pack", "running-example",
                "--solver", "maxwalksat",
                "--warm-start",
                "--json",
            ]
        )
        assert exit_code == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert any(entry["delta"]["warm_started"] > 0 for entry in lines[1:])

    def test_watch_bad_stream_reports_error(self, capsys, ranieri_file, tmp_path):
        bad = tmp_path / "bad.stream"
        bad.write_text("frobnicate CR coach Napoli [1,2]\n", encoding="utf-8")
        exit_code = main(
            [
                "watch", str(bad),
                "--graph", str(ranieri_file),
                "--pack", "running-example",
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_watch_requires_program(self, capsys, ranieri_file, stream_file):
        assert main(["watch", str(stream_file), "--graph", str(ranieri_file)]) == 1
        assert "error" in capsys.readouterr().err
