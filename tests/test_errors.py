"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            errors.TemporalError,
            errors.InvalidIntervalError,
            errors.TimeDomainError,
            errors.KGError,
            errors.InvalidTermError,
            errors.InvalidFactError,
            errors.ParseError,
            errors.LogicError,
            errors.UnificationError,
            errors.GroundingError,
            errors.UnsafeRuleError,
            errors.TranslationError,
            errors.ExpressivityError,
            errors.SolverError,
            errors.InfeasibleProgramError,
            errors.SolverNotAvailableError,
            errors.DatasetError,
        ],
    )
    def test_everything_derives_from_tecore_error(self, exception_type):
        assert issubclass(exception_type, errors.TecoreError)

    def test_expressivity_is_translation_error(self):
        assert issubclass(errors.ExpressivityError, errors.TranslationError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(errors.InfeasibleProgramError, errors.SolverError)

    def test_catching_the_base_class(self):
        with pytest.raises(errors.TecoreError):
            raise errors.InvalidFactError("boom")


class TestParseErrorFormatting:
    def test_location_information(self):
        error = errors.ParseError("bad token", line=7, source="rules.dl")
        assert "rules.dl" in str(error)
        assert "line 7" in str(error)
        assert error.line == 7
        assert error.source == "rules.dl"

    def test_without_location(self):
        assert str(errors.ParseError("bad token")) == "bad token"
