"""Factory error reporting: rejected kwargs must name backend and options."""

import pytest

from repro.core.registry import make_solver as registry_make_solver
from repro.errors import SolverNotAvailableError
from repro.mln import map_inference as mln_map
from repro.psl import map_inference as psl_map


class TestRejectedKwargs:
    def test_mln_factory_names_backend_and_kwargs(self):
        with pytest.raises(SolverNotAvailableError) as excinfo:
            mln_map.make_solver("ilp", time_limit=5, frobnicate=True)
        message = str(excinfo.value)
        assert "'ilp'" in message
        assert "frobnicate" in message

    def test_psl_factory_names_backend_and_kwargs(self):
        with pytest.raises(SolverNotAvailableError) as excinfo:
            psl_map.make_solver("admm", bogus_option=1)
        message = str(excinfo.value)
        assert "'admm'" in message
        assert "bogus_option" in message

    def test_registry_factory_names_solver_and_kwargs(self):
        with pytest.raises(SolverNotAvailableError) as excinfo:
            registry_make_solver("nrockit", not_an_option=3)
        message = str(excinfo.value)
        assert "'nrockit'" in message
        assert "not_an_option" in message

    def test_valid_kwargs_still_pass_through(self):
        solver = mln_map.make_solver("ilp", time_limit=7.5)
        assert solver.time_limit == 7.5

    def test_unknown_backend_still_reported(self):
        with pytest.raises(SolverNotAvailableError, match="unknown MLN back-end"):
            mln_map.make_solver("gurobi")

    def test_solve_map_surfaces_rejected_kwargs(self):
        from program_generators import random_ground_program

        program = random_ground_program(0, entities=1, isolated_atoms=0)
        with pytest.raises(SolverNotAvailableError, match="frobnicate"):
            mln_map.solve_map(program, "ilp", frobnicate=1)

    def test_internal_constructor_typeerror_is_not_masked(self):
        from repro.core import registry

        def buggy_factory():
            return len(None)  # a genuine bug inside the constructor body

        registry.register_solver("buggy-test", "mln", "broken on purpose", buggy_factory)
        try:
            with pytest.raises(TypeError):
                registry_make_solver("buggy-test")
        finally:
            registry._REGISTRY.pop("buggy-test", None)
