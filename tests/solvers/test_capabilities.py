"""Unit tests for solver capabilities and expressivity checks."""

import pytest

from repro.errors import ExpressivityError
from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram
from repro.solvers import (
    LOCAL_SEARCH_CAPABILITIES,
    MLN_CAPABILITIES,
    PSL_CAPABILITIES,
    SolverCapabilities,
    check_expressivity,
)


def _program_with_clause(literals, weight):
    program = GroundProgram()
    for index in range(max(i for i, _ in literals) + 1):
        program.add_atom(make_fact(f"s{index}", "p", "o", (1, 2), 0.9), is_evidence=True)
    program.add_clause(literals, weight, ClauseKind.RULE, "test")
    return program


class TestBuiltinCapabilities:
    def test_mln_is_exact_and_expressive(self):
        assert MLN_CAPABILITIES.exact
        assert MLN_CAPABILITIES.max_positive_literals_per_clause is None

    def test_psl_is_scalable_but_restricted(self):
        assert PSL_CAPABILITIES.scalable
        assert not PSL_CAPABILITIES.exact
        assert PSL_CAPABILITIES.max_positive_literals_per_clause == 1

    def test_local_search_not_exact(self):
        assert not LOCAL_SEARCH_CAPABILITIES.exact


class TestCheckExpressivity:
    def test_conflict_clause_fits_psl(self):
        program = _program_with_clause([(0, False), (1, False)], None)
        check_expressivity(program, PSL_CAPABILITIES)  # no error

    def test_rule_clause_fits_psl(self):
        program = _program_with_clause([(0, False), (1, True)], 2.5)
        check_expressivity(program, PSL_CAPABILITIES)

    def test_two_positive_literals_rejected_by_psl(self):
        program = _program_with_clause([(0, True), (1, True)], 2.5)
        with pytest.raises(ExpressivityError):
            check_expressivity(program, PSL_CAPABILITIES)
        check_expressivity(program, MLN_CAPABILITIES)  # fine for MLN

    def test_hard_clause_rejected_when_unsupported(self):
        no_hard = SolverCapabilities(name="nohard", exact=False, supports_hard_constraints=False)
        program = _program_with_clause([(0, False), (1, False)], None)
        with pytest.raises(ExpressivityError):
            check_expressivity(program, no_hard)

    def test_negative_literals_rejected_when_unsupported(self):
        positive_only = SolverCapabilities(
            name="positive", exact=False, supports_negative_clauses=False
        )
        program = _program_with_clause([(0, False), (1, True)], 1.0)
        with pytest.raises(ExpressivityError):
            check_expressivity(program, positive_only)

    def test_clause_length_bound(self):
        short_only = SolverCapabilities(name="short", exact=False, max_clause_length=2)
        program = _program_with_clause([(0, False), (1, False), (2, False)], None)
        with pytest.raises(ExpressivityError):
            check_expressivity(program, short_only)

    def test_running_example_fits_both_families(self, running_example_grounding):
        check_expressivity(running_example_grounding.program, MLN_CAPABILITIES)
        check_expressivity(running_example_grounding.program, PSL_CAPABILITIES)
