"""Property-based tests on the end-to-end resolution invariants.

Whatever the input career graph looks like, a TeCoRe repair must satisfy:

* the consistent graph is a subset of the input (evidence is never invented);
* the consistent graph violates no hard constraint;
* removed ∪ kept partitions the input facts;
* removing the removed facts is *necessary*: every reported hard violation
  involves at least one removed fact.
"""

from hypothesis import given, settings, strategies as st

from repro import TeCoRe
from repro.kg import TemporalKnowledgeGraph, make_fact
from repro.logic import find_conflicts, running_example_constraints
from repro.temporal import TimeInterval

_clubs = ("Chelsea", "Napoli", "Leicester", "Juventus", "Valencia")

_spells = st.lists(
    st.tuples(
        st.sampled_from(_clubs),
        st.integers(min_value=1980, max_value=2015),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0.1, max_value=0.99, allow_nan=False),
    ),
    min_size=0,
    max_size=8,
)

_people = st.sampled_from(["CR", "JM", "PG"])


def _build_graph(person, spells):
    graph = TemporalKnowledgeGraph(name="prop")
    for club, start, length, confidence in spells:
        graph.add(
            make_fact(
                person, "coach", club, TimeInterval(start, start + length), round(confidence, 2)
            )
        )
    return graph


class TestResolutionInvariants:
    @given(_people, _spells)
    @settings(max_examples=40, deadline=None)
    def test_repair_invariants_mln(self, person, spells):
        graph = _build_graph(person, spells)
        system = TeCoRe(constraints=running_example_constraints(), solver="nrockit")
        result = system.resolve(graph) if len(graph) else None
        if result is None:
            return
        input_keys = {fact.statement_key for fact in graph}
        kept_keys = {fact.statement_key for fact in result.consistent_graph}
        removed_keys = {fact.statement_key for fact in result.removed_facts}
        # Partition of the evidence.
        assert kept_keys | removed_keys == input_keys
        assert not (kept_keys & removed_keys)
        # No hard violations remain in the repaired graph.
        remaining = [
            violation
            for violation in find_conflicts(result.consistent_graph, running_example_constraints())
            if violation.is_hard
        ]
        assert remaining == []
        # Every removal is justified: either the fact participates in a
        # reported violation, or its confidence is below 0.5 (negative
        # log-odds), in which case the MLN's most probable world drops it
        # regardless of conflicts.
        facts_in_violations = {
            fact.statement_key for violation in result.violations for fact in violation.facts
        }
        low_confidence = {fact.statement_key for fact in graph if fact.confidence < 0.5}
        assert removed_keys <= (facts_in_violations | low_confidence)

    @given(_people, _spells)
    @settings(max_examples=25, deadline=None)
    def test_mln_and_psl_objectives_are_close(self, person, spells):
        graph = _build_graph(person, spells)
        if not len(graph):
            return
        mln = TeCoRe(constraints=running_example_constraints(), solver="nrockit").resolve(graph)
        psl = TeCoRe(constraints=running_example_constraints(), solver="npsl").resolve(graph)
        assert psl.objective <= mln.objective + 1e-6
        assert psl.objective >= mln.objective - max(1.0, 0.05 * abs(mln.objective))
