"""Property tests: WalkSAT search-state bookkeeping vs from-scratch truth.

Both MaxWalkSAT kernels keep incremental state — per-clause satisfied-literal
counts, the unsatisfied set/mask, and the penalty — updated literal-by-literal
on every flip.  These properties drive random flip sequences over random
ground programs (the seeded generator from ``program_generators``) and check
the incremental state against a from-scratch recomputation after every flip:

* the object kernel's ``_SearchState`` counts/sets/penalty;
* the array kernel's ``ArraySearchState`` counts/mask/penalty, including
  deduplicated batched flips (``flip_many``);
* object and array state agree with each other on the same flip sequence;
* the objective/hard-violation view of the assignment matches
  ``GroundProgram`` and ``GroundProgramArrays`` exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from program_generators import random_ground_program

from repro.logic import GroundProgramArrays
from repro.mln.solvers.maxwalksat import _SearchState
from repro.mln.solvers.maxwalksat_array import ArraySearchState

HARD_WEIGHT = 1_000.0


def scratch_penalty(program, assignment, hard_weight=HARD_WEIGHT):
    """Penalty recomputed from nothing: weight sum over unsatisfied clauses."""
    total = 0.0
    for clause in program.clauses:
        satisfied = any(assignment[index] == positive for index, positive in clause.literals)
        if not satisfied:
            total += hard_weight if clause.is_hard else float(clause.weight or 0.0)
    return total


def scratch_unsatisfied(program, assignment):
    return {
        clause_index
        for clause_index, clause in enumerate(program.clauses)
        if not any(assignment[index] == positive for index, positive in clause.literals)
    }


program_seeds = st.integers(min_value=0, max_value=200)
flip_sequences = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40)


class TestObjectSearchState:
    @given(program_seeds, flip_sequences, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_flips_match_scratch_recomputation(self, seed, flips, start_true):
        program = random_ground_program(seed, entities=3, max_facts=4)
        assignment = [start_true] * program.num_atoms
        state = _SearchState(program, assignment, HARD_WEIGHT, debug=True)
        for raw in flips:
            state.flip(raw % program.num_atoms)  # debug=True re-checks the invariant
            assert state.unsatisfied == scratch_unsatisfied(program, state.assignment)
            assert state.penalty == pytest.approx(
                scratch_penalty(program, state.assignment), abs=1e-6
            )

    @given(program_seeds)
    @settings(max_examples=20, deadline=None)
    def test_mark_satisfied_twice_cannot_double_subtract(self, seed):
        program = random_ground_program(seed, entities=2)
        state = _SearchState(program, [False] * program.num_atoms, HARD_WEIGHT)
        if not state.unsatisfied:
            return
        clause_index = next(iter(state.unsatisfied))
        before = state.penalty
        weight = state.weights[clause_index]
        state._mark_satisfied(clause_index)
        state._mark_satisfied(clause_index)  # second call must be a no-op
        assert state.penalty == pytest.approx(before - weight)
        state.check_invariant()


class TestArraySearchState:
    @given(program_seeds, flip_sequences, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_flips_match_scratch_recomputation(self, seed, flips, start_true):
        program = random_ground_program(seed, entities=3, max_facts=4)
        arrays = GroundProgramArrays.from_program(program)
        assignment = np.full(program.num_atoms, start_true, dtype=bool)
        state = ArraySearchState(arrays, assignment, HARD_WEIGHT, debug=True)
        for raw in flips:
            state.flip(raw % program.num_atoms)  # debug=True re-checks the invariant
            values = [bool(v) for v in state.assignment]
            assert set(np.flatnonzero(state.unsat)) == scratch_unsatisfied(program, values)
            assert state.penalty == pytest.approx(scratch_penalty(program, values), abs=1e-6)

    @given(program_seeds, st.lists(st.integers(0, 10_000), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_batched_flip_equals_distinct_sequential_flips(self, seed, raw_atoms):
        program = random_ground_program(seed, entities=3)
        arrays = GroundProgramArrays.from_program(program)
        atoms = np.unique(np.asarray(raw_atoms) % program.num_atoms)

        batched = ArraySearchState(
            arrays, np.ones(program.num_atoms, dtype=bool), HARD_WEIGHT, debug=True
        )
        batched.flip_many(atoms)

        sequential = ArraySearchState(arrays, np.ones(program.num_atoms, dtype=bool), HARD_WEIGHT)
        for atom in atoms:
            sequential.flip(int(atom))

        assert np.array_equal(batched.assignment, sequential.assignment)
        assert np.array_equal(batched.counts, sequential.counts)
        assert batched.penalty == pytest.approx(sequential.penalty)

    @given(program_seeds, flip_sequences)
    @settings(max_examples=30, deadline=None)
    def test_object_and_array_kernels_agree(self, seed, flips):
        program = random_ground_program(seed, entities=3)
        arrays = GroundProgramArrays.from_program(program)
        object_state = _SearchState(program, [True] * program.num_atoms, HARD_WEIGHT, debug=True)
        array_state = ArraySearchState(
            arrays, np.ones(program.num_atoms, dtype=bool), HARD_WEIGHT, debug=True
        )
        for raw in flips:
            atom = raw % program.num_atoms
            object_state.flip(atom)
            array_state.flip(atom)
            assert [bool(v) for v in array_state.assignment] == object_state.assignment
            assert set(np.flatnonzero(array_state.unsat)) == object_state.unsatisfied
            assert array_state.penalty == pytest.approx(object_state.penalty, abs=1e-6)
            # The evaluation view agrees with the object program exactly.
            values = object_state.assignment
            assert arrays.objective(values) == program.objective(values)
            expected_violations = [
                index
                for index, clause in enumerate(program.clauses)
                if clause.is_hard
                and not any(values[i] == positive for i, positive in clause.literals)
            ]
            assert list(arrays.hard_violation_indices(values)) == expected_violations
