"""Seeded random ground-program generator for differential solver tests.

Builds ground programs with the block structure the real workloads show:
facts cluster per entity, constraints couple facts of the same entity (plus a
few cross-entity links), and inference rules derive extra atoms.  Every
clause has at most one positive literal, so the generated programs stay
inside PSL expressivity and one generator serves both solver families.

All randomness comes from ``random.Random(seed)``: the same seed always
yields the same program, which is what makes the decomposition equivalence
suite reproducible.
"""

from __future__ import annotations

import random

from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram


def random_ground_program(
    seed: int,
    entities: int = 6,
    min_facts: int = 2,
    max_facts: int = 5,
    conflict_probability: float = 0.5,
    soft_constraint_probability: float = 0.25,
    rule_probability: float = 0.3,
    cross_entity_links: int = 1,
    isolated_atoms: int = 2,
) -> GroundProgram:
    """One random ground MAP problem with per-entity component structure.

    Parameters shape the interaction graph: ``entities`` blocks of
    ``min_facts..max_facts`` evidence atoms each, pairwise hard/soft
    constraints inside a block, ``rule_probability`` chances of a derived
    atom per evidence atom, ``cross_entity_links`` constraints joining
    consecutive entity blocks (merging their components), and
    ``isolated_atoms`` atoms that appear in no clause at all.
    """
    rng = random.Random(seed)
    program = GroundProgram()
    blocks: list[list[int]] = []

    for entity in range(entities):
        block: list[int] = []
        for fact_index in range(rng.randint(min_facts, max_facts)):
            confidence = rng.uniform(0.2, 0.95)
            start = rng.randint(0, 40)
            fact = make_fact(
                f"e{entity}",
                "rel",
                f"o{entity}_{fact_index}",
                (start, start + rng.randint(0, 10)),
                confidence,
            )
            atom = program.add_atom(fact, is_evidence=True)
            block.append(atom.index)
            program.add_clause(
                [(atom.index, True)],
                fact.log_weight,
                ClauseKind.EVIDENCE,
                f"ev:e{entity}:{fact_index}",
            )
        # Pairwise temporal-conflict style constraints inside the block.
        for position, first in enumerate(block):
            for second in block[position + 1:]:
                roll = rng.random()
                if roll < conflict_probability:
                    program.add_clause(
                        [(first, False), (second, False)],
                        None,
                        ClauseKind.CONSTRAINT,
                        f"hard:e{entity}",
                    )
                elif roll < conflict_probability + soft_constraint_probability:
                    program.add_clause(
                        [(first, False), (second, False)],
                        rng.uniform(0.5, 3.0),
                        ClauseKind.CONSTRAINT,
                        f"soft:e{entity}",
                    )
        # Inference-rule clauses deriving fresh atoms (one positive literal).
        for body_index in block:
            if rng.random() < rule_probability:
                body_fact = program.atoms[body_index].fact
                derived = program.add_atom(
                    make_fact(
                        str(body_fact.subject),
                        "derivedRel",
                        f"{body_fact.object}_d",
                        (body_fact.interval.start, body_fact.interval.end),
                        body_fact.confidence,
                    ),
                    is_evidence=False,
                    derived_by="gen-rule",
                )
                program.add_clause(
                    [(body_index, False), (derived.index, True)],
                    rng.uniform(0.5, 2.5),
                    ClauseKind.RULE,
                    f"rule:e{entity}",
                )
        blocks.append(block)

    # Cross-entity constraints merge consecutive blocks into one component.
    for link in range(min(cross_entity_links, entities - 1)):
        first_block, second_block = blocks[link], blocks[link + 1]
        program.add_clause(
            [(rng.choice(first_block), False), (rng.choice(second_block), False)],
            None if rng.random() < 0.5 else rng.uniform(0.5, 2.0),
            ClauseKind.CONSTRAINT,
            f"link:{link}",
        )

    # Atoms no clause ever mentions (exercise the sign-of-weight closure).
    for orphan in range(isolated_atoms):
        program.add_atom(
            make_fact(f"iso{orphan}", "rel", f"oiso{orphan}", (0, 1), rng.uniform(0.2, 0.95)),
            is_evidence=True,
        )

    return program
