"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.kg import TemporalKnowledgeGraph, make_fact
from repro.logic import ClauseKind, GroundProgram, constraint_c2, find_conflicts
from repro.mln import ILPMapSolver, MaxWalkSATSolver
from repro.psl import ADMMSolver
from repro.temporal import (
    ALL_RELATIONS,
    TimeInterval,
    coalesce_intervals,
    relation_between,
    total_coverage,
)

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
intervals = st.tuples(
    st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=25)
).map(lambda pair: TimeInterval(pair[0], pair[0] + pair[1]))

interval_lists = st.lists(intervals, min_size=0, max_size=12)

confidences = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


class TestIntervalProperties:
    @given(intervals, intervals)
    def test_exactly_one_allen_relation(self, a, b):
        holding = [relation for relation in ALL_RELATIONS if relation.holds(a, b)]
        assert len(holding) == 1

    @given(intervals, intervals)
    def test_relation_inverse_symmetry(self, a, b):
        assert relation_between(a, b).inverse is relation_between(b, a)

    @given(intervals, intervals)
    def test_overlap_symmetry_and_intersection(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        intersection = a.intersect(b)
        if a.overlaps(b):
            assert intersection is not None
            assert intersection.duration <= min(a.duration, b.duration)
            assert a.contains(intersection) and b.contains(intersection)
        else:
            assert intersection is None

    @given(intervals, intervals)
    def test_span_contains_both(self, a, b):
        span = a.span(b)
        assert span.contains(a) and span.contains(b)

    @given(intervals, intervals)
    def test_minus_disjoint_from_subtrahend(self, a, b):
        for piece in a.minus(b):
            assert a.contains(piece)
            assert piece.disjoint(b)

    @given(interval_lists)
    def test_coalesce_preserves_coverage(self, items):
        merged = coalesce_intervals(items)
        original_points = {point for interval in items for point in interval}
        merged_points = {point for interval in merged for point in interval}
        assert merged_points == original_points
        # Merged intervals are pairwise disjoint and non-adjacent.
        for first, second in zip(merged, merged[1:]):
            assert first.end + 1 < second.start

    @given(interval_lists)
    def test_total_coverage_equals_distinct_points(self, items):
        assert total_coverage(items) == len({point for interval in items for point in interval})


class TestGraphProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from("abcd"),
                st.sampled_from("pq"),
                st.sampled_from("xyz"),
                intervals,
                confidences,
            ),
            min_size=0,
            max_size=20,
        )
    )
    def test_graph_deduplicates_statements(self, rows):
        graph = TemporalKnowledgeGraph()
        facts = [make_fact(s, f"rel{p}", o, interval, c) for s, p, o, interval, c in rows]
        graph.add_all(facts)
        assert len(graph) == len({fact.statement_key for fact in facts})
        # Stored confidence is the maximum seen per statement.
        best = {}
        for fact in facts:
            best[fact.statement_key] = max(best.get(fact.statement_key, 0.0), fact.confidence)
        for fact in graph:
            assert fact.confidence == best[fact.statement_key]


class TestConflictProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["A", "B", "C"]), intervals, confidences),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_c2_violations_match_pairwise_overlap_count(self, spells):
        graph = TemporalKnowledgeGraph()
        facts = []
        for club, interval, confidence in spells:
            fact = make_fact("CR", "coach", club, interval, confidence)
            if fact not in graph:
                graph.add(fact)
                facts.append(fact)
        violations = find_conflicts(graph, [constraint_c2()])
        expected = 0
        for i, first in enumerate(facts):
            for second in facts[i + 1:]:
                if first.object != second.object and first.interval.overlaps(second.interval):
                    expected += 1
        assert len(violations) == expected


def _random_program(draw_data):
    """Build a small random ground program with conflicts."""
    program = GroundProgram()
    atoms = []
    for index, confidence in enumerate(draw_data["confidences"]):
        atom = program.add_atom(
            make_fact(f"s{index}", "rel", f"o{index}", (1, 2), confidence), is_evidence=True
        )
        atoms.append(atom)
        program.add_clause([(atom.index, True)], atom.fact.log_weight, ClauseKind.EVIDENCE, "e")
    for first, second in draw_data["conflicts"]:
        if first != second:
            program.add_clause(
                [(atoms[first].index, False), (atoms[second].index, False)],
                None,
                ClauseKind.CONSTRAINT,
                "c",
            )
    return program


program_data = st.fixed_dictionaries(
    {
        "confidences": st.lists(st.floats(min_value=0.1, max_value=0.99), min_size=2, max_size=7),
        "conflicts": st.lists(
            st.tuples(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)),
            min_size=0,
            max_size=8,
        ),
    }
).filter(
    lambda data: all(
        i < len(data["confidences"]) and j < len(data["confidences"]) for i, j in data["conflicts"]
    )
)


class TestSolverProperties:
    @given(program_data)
    @settings(max_examples=25, deadline=None)
    def test_exact_map_is_feasible_and_dominates_heuristics(self, data):
        program = _random_program(data)
        exact = ILPMapSolver().solve(program)
        assert program.is_feasible(exact.assignment)
        local = MaxWalkSATSolver(max_flips=2000, max_restarts=2, seed=0).solve(program)
        assert program.is_feasible(local.assignment)
        assert exact.objective >= local.objective - 1e-6

    @given(program_data)
    @settings(max_examples=25, deadline=None)
    def test_psl_rounding_is_feasible(self, data):
        program = _random_program(data)
        solution = ADMMSolver(max_iterations=200).solve(program)
        assert program.is_feasible(solution.assignment)
        assert all(0.0 <= value <= 1.0 for value in solution.truth_values)

    @given(program_data)
    @settings(max_examples=25, deadline=None)
    def test_map_objective_never_exceeds_total_soft_weight(self, data):
        program = _random_program(data)
        solution = ILPMapSolver().solve(program)
        assert solution.objective <= program.max_soft_weight() + 1e-9
