"""Property-based round-trip tests for the graph serialisation formats."""

from hypothesis import given, settings, strategies as st

from repro.kg import TemporalKnowledgeGraph, make_fact
from repro.kg.io import csv_io, json_io, tqlines
from repro.temporal import TimeInterval

_names = st.text(
    alphabet=st.sampled_from("abcdefgXYZ0123456789_"), min_size=1, max_size=12
).filter(lambda s: not s.startswith("_"))

_facts = st.builds(
    lambda s, p, o, start, length, confidence: make_fact(
        s, p, o, TimeInterval(start, start + length), round(confidence, 3)
    ),
    _names,
    _names,
    _names,
    st.integers(min_value=1900, max_value=2050),
    st.integers(min_value=0, max_value=30),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
)

_graphs = st.lists(_facts, min_size=0, max_size=15).map(
    lambda facts: TemporalKnowledgeGraph(facts, name="prop")
)


def _statements(graph):
    return {fact.statement_key for fact in graph}


class TestRoundTrips:
    @given(_graphs)
    @settings(max_examples=50, deadline=None)
    def test_tqlines_round_trip(self, graph):
        restored = tqlines.loads(tqlines.dumps(graph), name=graph.name)
        assert _statements(restored) == _statements(graph)
        for original, reloaded in zip(sorted(graph), sorted(restored)):
            assert abs(original.confidence - reloaded.confidence) < 1e-9

    @given(_graphs)
    @settings(max_examples=50, deadline=None)
    def test_csv_round_trip(self, graph):
        restored = csv_io.loads(csv_io.dumps(graph), name=graph.name)
        assert _statements(restored) == _statements(graph)

    @given(_graphs)
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip(self, graph):
        restored = json_io.loads(json_io.dumps(graph), name=graph.name)
        assert _statements(restored) == _statements(graph)
        assert restored.name == graph.name

    @given(_graphs)
    @settings(max_examples=30, deadline=None)
    def test_formats_agree_with_each_other(self, graph):
        via_lines = tqlines.loads(tqlines.dumps(graph))
        via_csv = csv_io.loads(csv_io.dumps(graph))
        via_json = json_io.loads(json_io.dumps(graph))
        assert _statements(via_lines) == _statements(via_csv) == _statements(via_json)
