"""Unit tests for the baseline resolvers (greedy, drop-lowest, static)."""

from repro.baselines import DropLowestResolver, GreedyResolver, StaticResolver
from repro.kg import TemporalKnowledgeGraph
from repro.logic import constraint_c2, running_example_constraints, sports_pack
from repro.metrics import repair_quality


class TestGreedyResolver:
    def test_resolves_running_example(self, ranieri):
        result = GreedyResolver().resolve(ranieri, running_example_constraints())
        assert result.violations_found == 1
        assert result.removed_count == 1
        assert len(result.consistent_graph) == 4
        # Greedy drops the lower-confidence member of the conflict.
        assert str(result.removed_facts[0].object) == "Napoli"

    def test_clean_graph_untouched(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Leicester", (2015, 2017), 0.7))
        result = GreedyResolver().resolve(graph, [constraint_c2()])
        assert result.removed_count == 0
        assert result.violations_found == 0

    def test_hub_fact_removed_first(self):
        # One low-confidence fact conflicting with two strong ones: greedy
        # should remove the hub, not the two strong facts.
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "A", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "B", (2006, 2010), 0.9))
        graph.add(("CR", "coach", "C", (2003, 2007), 0.4))
        result = GreedyResolver().resolve(graph, [constraint_c2()])
        assert result.removed_count == 1
        assert str(result.removed_facts[0].object) == "C"

    def test_result_graph_is_conflict_free(self, small_noisy_footballdb):
        constraints = sports_pack().constraints
        result = GreedyResolver().resolve(small_noisy_footballdb.graph, constraints)
        from repro.logic import find_conflicts

        assert find_conflicts(result.consistent_graph, constraints) == []

    def test_reasonable_quality_on_planted_noise(self, small_noisy_footballdb):
        constraints = sports_pack().constraints
        result = GreedyResolver().resolve(small_noisy_footballdb.graph, constraints)
        quality = repair_quality(result.removed_facts, small_noisy_footballdb.noise_facts)
        assert quality.recall > 0.5
        assert quality.precision > 0.5


class TestDropLowestResolver:
    def test_drops_weaker_of_each_pair(self, ranieri):
        result = DropLowestResolver().resolve(ranieri, running_example_constraints())
        assert str(result.removed_facts[0].object) == "Napoli"

    def test_can_over_remove_compared_to_greedy(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "A", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "B", (2006, 2010), 0.8))
        graph.add(("CR", "coach", "C", (2003, 2007), 0.4))
        greedy = GreedyResolver().resolve(graph, [constraint_c2()])
        pairwise = DropLowestResolver().resolve(graph, [constraint_c2()])
        assert greedy.removed_count <= pairwise.removed_count


class TestStaticResolver:
    def test_collapse_removes_temporal_information(self, ranieri):
        collapsed = StaticResolver().collapse(ranieri)
        intervals = {fact.interval for fact in collapsed}
        assert len(intervals) == 1

    def test_static_over_removes_on_running_example(self, ranieri):
        """The intro's motivating failure: non-overlapping coaching spells are
        wrongly treated as conflicting once time is ignored."""
        temporal = GreedyResolver().resolve(ranieri, running_example_constraints())
        static = StaticResolver().resolve(ranieri, running_example_constraints())
        assert static.removed_count > temporal.removed_count
        # The temporally-consistent Leicester spell is a static casualty.
        static_removed = {str(fact.object) for fact in static.removed_facts}
        assert "Leicester" in static_removed or "Chelsea" in static_removed

    def test_static_finds_more_violations(self, small_noisy_footballdb):
        constraints = sports_pack().constraints
        temporal = GreedyResolver().resolve(small_noisy_footballdb.graph, constraints)
        static = StaticResolver().resolve(small_noisy_footballdb.graph, constraints)
        assert static.violations_found >= temporal.violations_found

    def test_static_precision_is_worse(self, small_noisy_footballdb):
        constraints = sports_pack().constraints
        temporal = GreedyResolver().resolve(small_noisy_footballdb.graph, constraints)
        static = StaticResolver().resolve(small_noisy_footballdb.graph, constraints)
        quality_temporal = repair_quality(
            temporal.removed_facts, small_noisy_footballdb.noise_facts
        )
        quality_static = repair_quality(static.removed_facts, small_noisy_footballdb.noise_facts)
        assert quality_static.precision < quality_temporal.precision

    def test_runtime_recorded(self, ranieri):
        result = StaticResolver().resolve(ranieri, running_example_constraints())
        assert result.runtime_seconds >= 0.0
