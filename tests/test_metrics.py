"""Unit tests for repair-quality metrics."""

import pytest

from repro.kg import make_fact
from repro.metrics import (
    RepairQuality,
    assignment_agreement,
    jaccard,
    repair_quality,
    retention_rate,
)


def _facts(names):
    return [make_fact("s", "p", name, (1, 2), 0.5) for name in names]


class TestRepairQuality:
    def test_perfect_repair(self):
        noise = _facts(["a", "b"])
        quality = repair_quality(removed=noise, planted_noise=noise)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_partial_repair(self):
        noise = _facts(["a", "b", "c", "d"])
        removed = _facts(["a", "b", "x"])
        quality = repair_quality(removed, noise)
        assert quality.true_positives == 2
        assert quality.false_positives == 1
        assert quality.false_negatives == 2
        assert quality.precision == pytest.approx(2 / 3)
        assert quality.recall == pytest.approx(0.5)
        assert 0.0 < quality.f1 < 1.0

    def test_no_removals(self):
        quality = repair_quality([], _facts(["a"]))
        assert quality.precision == 1.0  # vacuous
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_no_noise(self):
        quality = repair_quality(_facts(["a"]), [])
        assert quality.recall == 1.0
        assert quality.precision == 0.0

    def test_as_dict(self):
        quality = RepairQuality(1, 1, 0)
        data = quality.as_dict()
        assert data["precision"] == pytest.approx(0.5)
        assert data["recall"] == 1.0


class TestOtherMetrics:
    def test_retention_rate(self):
        original = _facts(["a", "b", "c", "d"])
        kept = _facts(["a", "b", "c"])
        assert retention_rate(kept, original) == pytest.approx(0.75)
        assert retention_rate([], []) == 1.0

    def test_assignment_agreement(self):
        assert assignment_agreement([True, False, True], [True, True, True]) == pytest.approx(2 / 3)
        assert assignment_agreement([], []) == 1.0
        with pytest.raises(ValueError):
            assignment_agreement([True], [True, False])

    def test_jaccard(self):
        first = _facts(["a", "b"])
        second = _facts(["b", "c"])
        assert jaccard(first, second) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0
        assert jaccard(first, first) == 1.0
