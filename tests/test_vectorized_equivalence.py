"""Differential tests: the vectorized grounder must match the indexed one.

The columnar :class:`~repro.logic.VectorizedGrounder` changes the *data
representation* of the join path (interned integer columns, merge joins,
boolean masks), so this suite mirrors ``tests/test_grounding_equivalence.py``
and additionally stresses every corner of the join planner: constant
positions, repeated variables, variable predicates (the fallback path),
entity/interval variable clashes, the full Allen-relation vocabulary,
arithmetic conditions over term values, and every head-interval expression
kind.  Programs must come out **bit-for-bit identical** — same atom and
clause emission order, same firings, violations and round counts.
"""

import random

import pytest

from repro import TeCoRe
from repro.datasets import (
    FootballDBConfig,
    generate_footballdb,
    ranieri_extended_graph,
    ranieri_graph,
)
from repro.kg import TemporalKnowledgeGraph
from repro.logic import (
    GROUNDING_ENGINES,
    ConstraintBuilder,
    IndexedGrounder,
    NaiveGrounder,
    RuleBuilder,
    VectorizedGrounder,
    allen,
    compare,
    equal,
    find_conflicts,
    ground,
    make_grounder,
    not_equal,
    quad,
    running_example_constraints,
    running_example_rules,
    sports_pack,
    union,
    var,
)
from repro.logic.constraint import ConstraintKind
from repro.logic.expressions import IntervalDuration, IntervalEnd, IntervalStart, TermValue
from repro.logic.terms import Variable
from test_grounding_equivalence import random_sports_graph


def assert_equivalent(graph, rules, constraints, max_rounds=5):
    """Ground with indexed and vectorized engines; compare every observable."""
    indexed = IndexedGrounder(
        graph, rules=rules, constraints=constraints, max_rounds=max_rounds
    ).ground()
    vectorized = VectorizedGrounder(
        graph, rules=rules, constraints=constraints, max_rounds=max_rounds
    ).ground()

    # Order-independent: same atoms and clauses as sets.
    assert (
        indexed.program.canonical_signature() == vectorized.program.canonical_signature()
    ), "engines produced different ground programs"

    # Bit-for-bit: same emission order for atoms, clauses, firings, and
    # violations, and the same number of chaining rounds.
    assert [str(atom) for atom in indexed.program.atoms] == [
        str(atom) for atom in vectorized.program.atoms
    ]
    assert [str(clause) for clause in indexed.program.clauses] == [
        str(clause) for clause in vectorized.program.clauses
    ]
    assert indexed.firings == vectorized.firings
    assert indexed.violations == vectorized.violations
    assert indexed.rounds == vectorized.rounds
    return indexed, vectorized


# --------------------------------------------------------------------------- #
# Running example and FootballDB (mirroring the indexed-vs-naive suite)
# --------------------------------------------------------------------------- #
class TestRunningExampleEquivalence:
    def test_figure_1_graph(self):
        indexed, _ = assert_equivalent(
            ranieri_graph(), running_example_rules(), running_example_constraints()
        )
        assert len(indexed.violations) == 1

    def test_extended_graph_two_round_chaining(self):
        indexed, _ = assert_equivalent(
            ranieri_extended_graph(),
            running_example_rules(),
            running_example_constraints(),
        )
        assert indexed.rounds >= 2

    def test_constraints_only(self):
        assert_equivalent(ranieri_graph(), rules=(), constraints=running_example_constraints())

    def test_rules_only(self):
        assert_equivalent(ranieri_graph(), running_example_rules(), constraints=())

    def test_max_rounds_truncation(self):
        assert_equivalent(
            ranieri_extended_graph(),
            running_example_rules(),
            running_example_constraints(),
            max_rounds=1,
        )

    def test_against_naive_engine_too(self):
        naive = NaiveGrounder(
            ranieri_graph(),
            rules=running_example_rules(),
            constraints=running_example_constraints(),
        ).ground()
        vectorized = VectorizedGrounder(
            ranieri_graph(),
            rules=running_example_rules(),
            constraints=running_example_constraints(),
        ).ground()
        assert [str(c) for c in naive.program.clauses] == [
            str(c) for c in vectorized.program.clauses
        ]


class TestFootballDBEquivalence:
    @pytest.mark.parametrize("noise_ratio", [0.0, 0.5])
    def test_small_footballdb(self, noise_ratio):
        dataset = generate_footballdb(
            FootballDBConfig(scale=0.01, noise_ratio=noise_ratio, seed=2017)
        )
        pack = sports_pack()
        assert_equivalent(dataset.graph, pack.rules, pack.constraints)

    def test_footballdb_with_chained_rules(self):
        """Deep chaining exercises the round-labelled semi-naive windows."""
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.5, seed=7))
        graph = dataset.graph.copy(name="footballdb-chained")
        from repro.datasets.footballdb import TEAM_NAMES

        for team in TEAM_NAMES[:10]:
            graph.add((team, "locatedIn", f"{team}City", (1940, 2020), 0.95))
        chain_predicates = ["locatedIn", "inCity", "inRegion", "inCountry"]
        chain_rules = [
            RuleBuilder(f"geo{index}")
            .body(quad("y", source, "z", "t"))
            .head(quad("y", target, "z", "t"))
            .weight(1.2)
            .build()
            for index, (source, target) in enumerate(zip(chain_predicates, chain_predicates[1:]))
        ]
        pack = sports_pack()
        indexed, _ = assert_equivalent(
            graph, list(pack.rules) + chain_rules, pack.constraints, max_rounds=10
        )
        assert indexed.rounds >= 3

    def test_team_level_join_constraint(self):
        """Joins on the object position (large per-team buckets)."""
        dataset = generate_footballdb(FootballDBConfig(scale=0.02, noise_ratio=0.5, seed=11))
        audit = (
            ConstraintBuilder("duplicateRegistration")
            .body(quad("x", "playsFor", "y", "t"), quad("z", "playsFor", "y", "t2"))
            .when(not_equal("x", "z"))
            .require(compare(IntervalStart(Variable("t")), "!=", IntervalStart(Variable("t2"))))
            .kind(ConstraintKind.EQUALITY_GENERATING)
            .soft(0.8)
            .build()
        )
        indexed, _ = assert_equivalent(dataset.graph, (), [audit])
        assert indexed.violations


# --------------------------------------------------------------------------- #
# Randomized seeded graphs
# --------------------------------------------------------------------------- #
class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_noisy_graphs(self, seed, audited_seed):
        assert_equivalent(
            random_sports_graph(audited_seed(seed)),
            running_example_rules(),
            running_example_constraints(),
        )

    @pytest.mark.parametrize("seed", [11, 12])
    def test_random_graphs_sports_pack(self, seed, audited_seed):
        graph = random_sports_graph(audited_seed(seed), facts=150)
        pack = sports_pack()
        assert_equivalent(graph, pack.rules, pack.constraints)

    def test_empty_graph(self):
        assert_equivalent(
            TemporalKnowledgeGraph(name="empty"),
            running_example_rules(),
            running_example_constraints(),
        )

    @pytest.mark.parametrize(
        "relation",
        [
            "before", "after", "overlaps", "disjoint", "meets", "metBy",
            "starts", "startedBy", "during", "contains", "finishes",
            "finishedBy", "equals", "within",
        ],
    )
    def test_every_allen_relation(self, relation):
        """Each constraint-predicate mask must match the scalar evaluation."""
        graph = random_sports_graph(21, facts=90)
        constraint = (
            ConstraintBuilder(f"allen-{relation}")
            .body(quad("x", "playsFor", "y", "t"), quad("x", "coach", "z", "t2"))
            .require(allen(relation, "t", "t2"))
            .build()
        )
        assert_equivalent(graph, (), [constraint])


# --------------------------------------------------------------------------- #
# Join-planner corner cases
# --------------------------------------------------------------------------- #
class TestPlannerCornerCases:
    def test_constant_positions(self):
        """Constants in subject/object/interval positions become masks."""
        graph = random_sports_graph(31)
        rules = [
            RuleBuilder("constObj")
            .body(quad("x", "playsFor", "Team1", "t"))
            .head(quad("x", "type", "Team1Alumnus", "t"))
            .weight(1.1)
            .build(),
            RuleBuilder("constSubj")
            .body(quad("Player0", "playsFor", "y", "t"))
            .head(quad("Player0", "affiliatedWith", "y", "t"))
            .weight(0.7)
            .build(),
        ]
        constraint = (
            ConstraintBuilder("constInterval")
            .body(
                quad("x", "playsFor", "y", (1980, 1985)),
                quad("x", "playsFor", "z", "t2"),
            )
            .when(not_equal("y", "z"))
            .require(allen("disjoint", "t2", "t2"))
            .build()
        )
        assert_equivalent(graph, rules, [constraint])

    def test_unseen_constant_prunes_join(self):
        """A constant the store never interned cannot match anything."""
        graph = random_sports_graph(32)
        rule = (
            RuleBuilder("ghost")
            .body(quad("x", "playsFor", "NoSuchTeam", "t"))
            .head(quad("x", "type", "Ghost", "t"))
            .weight(1.0)
            .build()
        )
        indexed, vectorized = assert_equivalent(graph, [rule], ())
        assert not indexed.firings

    def test_repeated_variable_within_atom(self):
        graph = TemporalKnowledgeGraph(name="selfloop")
        graph.add(("A", "knows", "A", (2000, 2001), 0.9))
        graph.add(("A", "knows", "B", (2000, 2001), 0.8))
        rule = (
            RuleBuilder("selfAware")
            .body(quad("x", "knows", "x", "t"))
            .head(quad("x", "type", "SelfAware", "t"))
            .weight(2.0)
            .build()
        )
        indexed, _ = assert_equivalent(graph, [rule], ())
        assert len(indexed.firings) == 1

    def test_entity_interval_variable_clash_matches_nothing(self):
        """One name in both entity and interval positions can never match."""
        graph = random_sports_graph(33)
        rule = (
            RuleBuilder("clash")
            .body(quad("x", "playsFor", "y", "t"), quad("y", "coach", "t", "t2"))
            .head(quad("x", "type", "Weird", "t"))
            .weight(1.0)
            .build()
        )
        indexed, vectorized = assert_equivalent(graph, [rule], ())
        assert not indexed.firings

    def test_variable_predicate_falls_back(self):
        """Variable predicates use the indexed engine's backtracking join."""
        graph = random_sports_graph(34, facts=60)
        rule = (
            RuleBuilder("meta")
            .body(quad("x", var("p"), "y", "t"))
            .head(quad("x", "relatedTo", "y", "t"))
            .weight(0.5)
            .build()
        )
        indexed, _ = assert_equivalent(graph, [rule], ())
        assert indexed.firings

    def test_shared_interval_variable_joins_on_interval(self):
        """The same interval variable in two atoms becomes a (begin,end) key."""
        graph = random_sports_graph(35)
        constraint = (
            ConstraintBuilder("sameSpan")
            .body(quad("x", "playsFor", "y", "t"), quad("z", "coach", "w", "t"))
            .when(not_equal("x", "z"))
            .require(equal("y", "w"))
            .build()
        )
        assert_equivalent(graph, (), [constraint])

    def test_term_equality_with_unseen_constant(self):
        graph = random_sports_graph(36)
        constraint = (
            ConstraintBuilder("neverEqual")
            .body(quad("x", "playsFor", "y", "t"), quad("x", "playsFor", "z", "t2"))
            .when(equal("y", "UnknownTeam"))
            .require(allen("disjoint", "t", "t2"))
            .build()
        )
        indexed, _ = assert_equivalent(graph, (), [constraint])
        assert not indexed.violations

    def test_term_value_and_duration_arithmetic(self):
        """TermValue decoding and duration() arithmetic as vector masks."""
        graph = random_sports_graph(37)
        veteran = (
            RuleBuilder("veteran")
            .body(quad("x", "playsFor", "y", "t"))
            .when(compare(IntervalDuration(Variable("t")), ">=", 8))
            .head(quad("x", "type", "Veteran", "t"))
            .weight(1.3)
            .build()
        )
        born_late = (
            RuleBuilder("bornLate")
            .body(quad("x", "birthDate", "b", "t"))
            .when(compare(TermValue(Variable("b")), ">", 1970))
            .head(quad("x", "type", "ModernEra", "t"))
            .weight(0.9)
            .build()
        )
        assert_equivalent(graph, [veteran, born_late], ())

    def test_union_head_interval_expression(self):
        graph = random_sports_graph(38)
        rule = (
            RuleBuilder("span")
            .body(quad("x", "playsFor", "y", "t"), quad("x", "coach", "z", "t2"))
            .head(quad("x", "activeIn", "y", "t"), interval=union("t", "t2"))
            .weight(0.6)
            .build()
        )
        assert_equivalent(graph, [rule], ())

    def test_fixed_head_interval(self):
        graph = random_sports_graph(39)
        rule = (
            RuleBuilder("fixed")
            .body(quad("x", "coach", "y", "t"))
            .head(quad("x", "type", "Coach", (1900, 2100)))
            .weight(1.0)
            .build()
        )
        assert_equivalent(graph, [rule], ())

    def test_end_comparison_condition(self):
        graph = random_sports_graph(40)
        constraint = (
            ConstraintBuilder("endsOrdered")
            .body(quad("x", "birthDate", "y", "t"), quad("x", "coach", "z", "t2"))
            .require(compare(IntervalEnd(Variable("t")), ">=", IntervalEnd(Variable("t2"))))
            .build()
        )
        assert_equivalent(graph, (), [constraint])

    def test_mixed_hard_soft_clauses(self):
        graph = TemporalKnowledgeGraph(name="hard-soft")
        graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        graph.add(("CR", "coach", "Napoli", (2001, 2003), 0.6))

        def c2_like(name, weight):
            builder = (
                ConstraintBuilder(name)
                .body(quad("x", "coach", "y", "t"), quad("x", "coach", "z", "t2"))
                .when(not_equal("y", "z"))
                .require(allen("disjoint", "t", "t2"))
            )
            builder = builder.hard() if weight is None else builder.soft(weight)
            return builder.build()

        indexed, _ = assert_equivalent(
            graph, rules=(), constraints=[c2_like("hardC2", None), c2_like("softC2", 1.5)]
        )
        assert len(indexed.violations) == 2


# --------------------------------------------------------------------------- #
# Error and fallback parity
# --------------------------------------------------------------------------- #
class TestErrorAndFallbackParity:
    """Both engines must degrade identically on awkward programs."""

    def both_raise(self, graph, rules, constraints, exception):
        for engine_class in (IndexedGrounder, VectorizedGrounder):
            with pytest.raises(exception):
                engine_class(graph, rules=rules, constraints=constraints).ground()

    def test_allen_over_entity_variable_raises(self):
        from repro.errors import LogicError

        graph = random_sports_graph(61)
        constraint = (
            ConstraintBuilder("badAllen")
            .body(quad("x", "playsFor", "y", "t"), quad("x", "playsFor", "z", "t2"))
            .require(allen("overlaps", "y", "t2"))  # y is an entity variable
            .build()
        )
        self.both_raise(graph, (), [constraint], LogicError)

    def test_term_equality_over_interval_variable_raises(self):
        from repro.errors import LogicError

        graph = random_sports_graph(62)
        constraint = (
            ConstraintBuilder("badEq")
            .body(quad("x", "playsFor", "y", "t"), quad("x", "playsFor", "z", "t2"))
            .when(equal("t", "z"))  # t is an interval variable
            .require(allen("disjoint", "t", "t2"))
            .build()
        )
        self.both_raise(graph, (), [constraint], LogicError)

    def test_non_numeric_term_value_raises(self):
        from repro.errors import LogicError

        graph = random_sports_graph(63)
        rule = (
            RuleBuilder("badValue")
            .body(quad("x", "playsFor", "y", "t"))
            .when(compare(TermValue(Variable("y")), ">", 3))  # team names aren't numbers
            .head(quad("x", "type", "Weird", "t"))
            .weight(1.0)
            .build()
        )
        self.both_raise(graph, [rule], (), LogicError)

    def test_division_by_zero_raises(self):
        from repro.errors import LogicError
        from repro.logic.expressions import BinaryOp, Number

        graph = random_sports_graph(64)
        rule = (
            RuleBuilder("divZero")
            .body(quad("x", "playsFor", "y", "t"))
            .when(compare(BinaryOp("/", IntervalStart(Variable("t")), Number(0.0)), ">", 1))
            .head(quad("x", "type", "Weird", "t"))
            .weight(1.0)
            .build()
        )
        self.both_raise(graph, [rule], (), LogicError)

    def test_scalar_constant_comparisons(self):
        graph = random_sports_graph(65)
        always = (
            RuleBuilder("always")
            .body(quad("x", "coach", "y", "t"))
            .when(compare(1, "<", 2))
            .head(quad("x", "type", "CoachEver", "t"))
            .weight(1.0)
            .build()
        )
        never = (
            RuleBuilder("never")
            .body(quad("x", "coach", "y", "t"))
            .when(compare(2, "<", 1))
            .head(quad("x", "type", "Impossible", "t"))
            .weight(1.0)
            .build()
        )
        indexed, _ = assert_equivalent(graph, [always, never], ())
        assert all(firing.rule == "always" for firing in indexed.firings)

    def test_constant_constant_equality(self):
        graph = random_sports_graph(66)
        constraint = (
            ConstraintBuilder("constEq")
            .body(quad("x", "playsFor", "y", "t"), quad("x", "playsFor", "z", "t2"))
            .when(equal("Team1", "Team1"))
            .when(not_equal("y", "z"))
            .require(allen("disjoint", "t", "t2"))
            .build()
        )
        assert_equivalent(graph, (), [constraint])

    def test_unknown_condition_class_uses_per_row_fallback(self):
        from repro.logic.atom import ConditionAtom

        class LongCareer(ConditionAtom):
            """A condition class the vectorizer has never heard of."""

            def holds(self, substitution):
                interval = substitution.interval(Variable("t"))
                return interval is not None and interval.duration >= 5

            def variables(self):
                return {Variable("t")}

        graph = random_sports_graph(67)
        rule = (
            RuleBuilder("custom")
            .body(quad("x", "playsFor", "y", "t"))
            .when(LongCareer())
            .head(quad("x", "type", "LongTimer", "t"))
            .weight(1.0)
            .build()
        )
        indexed, _ = assert_equivalent(graph, [rule], ())
        assert indexed.firings

    def test_variable_predicate_constraint_falls_back(self):
        graph = random_sports_graph(68, facts=60)
        constraint = (
            ConstraintBuilder("metaConflict")
            .body(quad("x", var("p"), "y", "t"), quad("x", var("p"), "z", "t2"))
            .when(not_equal("y", "z"))
            .require(allen("disjoint", "t", "t2"))
            .build()
        )
        indexed, _ = assert_equivalent(graph, (), [constraint])
        assert indexed.violations

    def test_var_and_shift_head_interval_expressions(self):
        from repro.temporal.arithmetic import IntervalExpression

        graph = random_sports_graph(69)
        via_var = (
            RuleBuilder("viaVar")
            .body(quad("x", "coach", "y", "t"))
            .head(quad("x", "managed", "y", "t"), interval=IntervalExpression.variable("t"))
            .weight(1.0)
            .build()
        )
        shifted = (
            RuleBuilder("shifted")
            .body(quad("x", "coach", "y", "t"))
            .head(quad("x", "postCareer", "y", "t"), interval=IntervalExpression.shift("t", 3))
            .weight(1.0)
            .build()
        )
        indexed, _ = assert_equivalent(graph, [via_var, shifted], ())
        assert indexed.firings

    def test_unknown_head_interval_kind_raises(self):
        from repro.errors import LogicError
        from repro.temporal.arithmetic import IntervalExpression

        graph = random_sports_graph(70)
        rule = (
            RuleBuilder("strange")
            .body(quad("x", "coach", "y", "t"))
            .head(
                quad("x", "managed", "y", "t"),
                interval=IntervalExpression(kind="mystery", left="t"),
            )
            .weight(1.0)
            .build()
        )
        self.both_raise(graph, [rule], (), LogicError)

    def test_interval_bound_head_entity_variable_raises(self):
        from repro.errors import LogicError

        graph = random_sports_graph(71)
        rule = (
            RuleBuilder("intervalHead")
            .body(quad("x", "coach", "y", "t"))
            .head(quad("x", "managedDuring", "t", "t"))  # t in object position
            .weight(1.0)
            .build()
        )
        self.both_raise(graph, [rule], (), LogicError)


# --------------------------------------------------------------------------- #
# Engine selection and end-to-end resolution
# --------------------------------------------------------------------------- #
class TestEngineSelectionAndResolution:
    def test_registered_in_engine_registry(self):
        assert GROUNDING_ENGINES["vectorized"] is VectorizedGrounder
        graph = ranieri_graph()
        assert isinstance(make_grounder("vectorized", graph), VectorizedGrounder)

    def test_ground_function_dispatch(self):
        graph = ranieri_graph()
        rules = running_example_rules()
        constraints = running_example_constraints()
        vectorized = ground(graph, rules, constraints, engine="vectorized")
        indexed = ground(graph, rules, constraints, engine="indexed")
        assert (vectorized.program.canonical_signature() == indexed.program.canonical_signature())

    def test_find_conflicts_agreement(self):
        graph = ranieri_graph()
        constraints = running_example_constraints()
        assert find_conflicts(graph, constraints, engine="vectorized") == find_conflicts(
            graph, constraints, engine="indexed"
        )

    @pytest.mark.parametrize("solver", ["nrockit", "npsl"])
    def test_resolution_is_engine_independent(self, solver):
        graph = random_sports_graph(55, facts=80)
        results = {}
        for engine in ("indexed", "vectorized"):
            system = TeCoRe.from_pack("running-example", solver=solver, engine=engine)
            results[engine] = system.resolve(graph)
        assert (results["indexed"].solution.assignment == results["vectorized"].solution.assignment)
        assert results["indexed"].removed_facts == results["vectorized"].removed_facts

    def test_seeded_fuzz_many_shapes(self):
        """A small seeded fuzz over rule/constraint shape combinations."""
        rng = random.Random(99)
        relations = ["overlaps", "disjoint", "before", "during", "equals"]
        for trial in range(6):
            graph = random_sports_graph(100 + trial, facts=100)
            relation = rng.choice(relations)
            constraint = (
                ConstraintBuilder(f"fuzz{trial}")
                .body(quad("x", "playsFor", "y", "t"), quad("x", "playsFor", "z", "t2"))
                .when(not_equal("y", "z"))
                .require(allen(relation, "t", "t2"))
                .build()
            )
            rules = [
                RuleBuilder(f"fuzzRule{trial}")
                .body(quad("x", "playsFor", "y", "t"))
                .head(quad("x", "worksFor", "y", "t"))
                .weight(round(rng.uniform(0.5, 3.0), 2))
                .build()
            ]
            assert_equivalent(graph, rules, [constraint])
