"""Unit tests for the PSL template program."""

from repro.psl import PSLProgram
from repro.logic import constraint_c2, rule_f1, running_example_constraints, running_example_rules


class TestPSLProgram:
    def test_extend_and_counts(self):
        program = PSLProgram()
        program.extend(rules=[rule_f1()], constraints=[constraint_c2()])
        assert program.num_formulas == 2

    def test_ground_validates_expressivity(self, ranieri):
        program = PSLProgram(
            rules=running_example_rules(), constraints=running_example_constraints()
        )
        result = program.ground(ranieri)
        assert result.program.num_atoms >= len(ranieri)
        assert len(result.violations) == 1

    def test_repr(self):
        assert "rules=1" in repr(PSLProgram(rules=[rule_f1()]))
