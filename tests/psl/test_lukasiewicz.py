"""Unit tests for the Łukasiewicz relaxation and hinge potentials."""

import numpy as np
import pytest

from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram
from repro.psl.lukasiewicz import (
    PotentialMatrix,
    clause_to_potential,
    program_to_potentials,
    total_penalty,
)


def _program():
    program = GroundProgram()
    a = program.add_atom(make_fact("a", "p", "b", (1, 2), 0.9), is_evidence=True)
    b = program.add_atom(make_fact("c", "p", "d", (1, 2), 0.6), is_evidence=True)
    program.add_clause([(a.index, True)], 2.0, ClauseKind.EVIDENCE, "e1")
    program.add_clause([(b.index, True)], 0.5, ClauseKind.EVIDENCE, "e2")
    program.add_clause([(a.index, False), (b.index, False)], None, ClauseKind.CONSTRAINT, "c")
    return program


class TestClauseToPotential:
    def test_positive_unit_clause(self):
        program = _program()
        potential = clause_to_potential(program.clauses[0], hard_weight=100.0)
        # d(y) = max(0, 1 - y_a): zero when true, one when false.
        assert potential.distance([1.0, 0.0]) == pytest.approx(0.0)
        assert potential.distance([0.0, 0.0]) == pytest.approx(1.0)
        assert potential.distance([0.25, 0.0]) == pytest.approx(0.75)
        assert potential.weight == 2.0
        assert not potential.hard

    def test_conflict_clause(self):
        program = _program()
        potential = clause_to_potential(program.clauses[2], hard_weight=100.0)
        # d(y) = max(0, y_a + y_b - 1).
        assert potential.distance([1.0, 1.0]) == pytest.approx(1.0)
        assert potential.distance([1.0, 0.0]) == pytest.approx(0.0)
        assert potential.distance([0.7, 0.6]) == pytest.approx(0.3)
        assert potential.hard
        assert potential.weight == 100.0

    def test_squared_distance(self):
        program = _program()
        potential = clause_to_potential(program.clauses[0], hard_weight=100.0, squared=True)
        assert potential.distance([0.5, 0.0]) == pytest.approx(0.25)

    def test_subgradient_active_and_inactive(self):
        program = _program()
        potential = clause_to_potential(program.clauses[2], hard_weight=10.0)
        assert potential.subgradient([0.2, 0.2]) == {}
        gradient = potential.subgradient([1.0, 0.8])
        assert gradient[0] == pytest.approx(10.0)
        assert gradient[1] == pytest.approx(10.0)

    def test_penalty_scaling(self):
        program = _program()
        potential = clause_to_potential(program.clauses[1], hard_weight=1.0)
        assert potential.penalty([0.0, 0.0]) == pytest.approx(0.5)


class TestProgramConversion:
    def test_every_clause_becomes_a_potential(self):
        program = _program()
        potentials = program_to_potentials(program)
        assert len(potentials) == program.num_clauses

    def test_total_penalty_of_boolean_states(self):
        program = _program()
        potentials = program_to_potentials(program, hard_weight=100.0)
        # Keeping both facts violates the hard constraint.
        assert total_penalty(potentials, [1.0, 1.0]) == pytest.approx(100.0)
        # Dropping the weak fact costs only its evidence weight.
        assert total_penalty(potentials, [1.0, 0.0]) == pytest.approx(0.5)


class TestPotentialMatrix:
    def test_values_match_scalar_potentials(self):
        program = _program()
        potentials = program_to_potentials(program, hard_weight=50.0)
        matrix = PotentialMatrix(potentials, program.num_atoms)
        state = np.array([0.8, 0.4])
        values = matrix.values(state)
        for position, potential in enumerate(potentials):
            expected = potential.constant + sum(
                coefficient * state[index]
                for index, coefficient in zip(potential.indexes, potential.coefficients)
            )
            assert values[position] == pytest.approx(expected)

    def test_penalties_match_scalar_potentials(self):
        program = _program()
        potentials = program_to_potentials(program, hard_weight=50.0)
        matrix = PotentialMatrix(potentials, program.num_atoms)
        state = np.array([0.9, 0.7])
        assert matrix.penalties(state).sum() == pytest.approx(total_penalty(potentials, state))

    def test_subgradient_matches_scalar_sum(self):
        program = _program()
        potentials = program_to_potentials(program, hard_weight=50.0)
        matrix = PotentialMatrix(potentials, program.num_atoms)
        state = np.array([0.9, 0.7])
        dense = np.zeros(2)
        for potential in potentials:
            for index, value in potential.subgradient(state).items():
                dense[index] += value
        assert np.allclose(matrix.subgradient(state), dense)

    def test_variable_counts(self):
        program = _program()
        matrix = PotentialMatrix(program_to_potentials(program), program.num_atoms)
        assert list(matrix.variable_counts) == [2.0, 2.0]
