"""Unit tests for the PSL MAP solvers (ADMM and projected gradient) and rounding."""

import pytest

from repro.errors import InfeasibleProgramError, SolverNotAvailableError
from repro.kg import make_fact
from repro.logic import ClauseKind, GroundProgram
from repro.mln import ILPMapSolver
from repro.psl import (
    ADMMSolver,
    HingeLossMRF,
    available_backends,
    make_solver,
    repair_hard,
    round_solution,
    solve_map,
    threshold,
)

PSL_BACKENDS = ["admm", "projected-gradient"]


def _conflict_program():
    program = GroundProgram()
    strong = program.add_atom(make_fact("x", "coach", "A", (1, 5), 0.9), is_evidence=True)
    weak = program.add_atom(make_fact("x", "coach", "B", (2, 4), 0.6), is_evidence=True)
    free = program.add_atom(make_fact("x", "birthDate", 1950, (1950, 2000), 0.8), is_evidence=True)
    for atom in (strong, weak, free):
        program.add_clause([(atom.index, True)], atom.fact.log_weight, ClauseKind.EVIDENCE, "e")
    program.add_clause(
        [(strong.index, False), (weak.index, False)], None, ClauseKind.CONSTRAINT, "c2"
    )
    return program, strong, weak, free


class TestRegistry:
    def test_backends(self):
        assert set(available_backends()) == {"admm", "admm-array", "projected-gradient"}

    def test_unknown_backend(self):
        with pytest.raises(SolverNotAvailableError):
            make_solver("exact")


@pytest.mark.parametrize("backend", PSL_BACKENDS)
class TestPSLBackends:
    def test_conflict_resolution(self, backend):
        program, strong, weak, free = _conflict_program()
        solution = solve_map(program, backend=backend)
        assert solution.assignment[strong.index] is True
        assert solution.assignment[weak.index] is False
        assert solution.assignment[free.index] is True
        assert program.is_feasible(solution.assignment)

    def test_truth_values_in_unit_interval(self, backend):
        program, *_ = _conflict_program()
        solution = solve_map(program, backend=backend)
        assert all(0.0 <= value <= 1.0 for value in solution.truth_values)
        assert len(solution.truth_values) == program.num_atoms

    def test_running_example_matches_exact_repair(self, backend, running_example_grounding):
        program = running_example_grounding.program
        solution = solve_map(program, backend=backend)
        removed = {str(fact.object) for fact in solution.removed_facts(program)}
        assert removed == {"Napoli"}

    def test_objective_close_to_exact(self, backend, running_example_grounding):
        program = running_example_grounding.program
        exact = ILPMapSolver().solve(program).objective
        approximate = solve_map(program, backend=backend).objective
        assert approximate >= exact - 0.5


class TestADMMInternals:
    def test_converges_before_iteration_cap(self, running_example_grounding):
        solution = ADMMSolver(max_iterations=2000).solve(running_example_grounding.program)
        assert solution.stats.iterations < 2000

    def test_squared_hinge_variant(self, running_example_grounding):
        program = running_example_grounding.program
        solution = ADMMSolver(squared=True).solve(program)
        removed = {str(fact.object) for fact in solution.removed_facts(program)}
        assert removed == {"Napoli"}

    def test_empty_potentials(self):
        program = GroundProgram()
        program.add_atom(make_fact("a", "p", "b", (1, 2), 0.9), is_evidence=True)
        mrf = HingeLossMRF.from_program(program)
        # No clauses: the solver should return without iterating.
        solver = ADMMSolver()
        truth_values, iterations = solver._optimise(mrf)
        assert iterations == 0
        assert len(truth_values) == 1


class TestHingeLossMRF:
    def test_energy_and_feasibility(self, running_example_grounding):
        mrf = HingeLossMRF.from_program(running_example_grounding.program)
        keep_all = mrf.initial_state()
        assert mrf.hard_violation(keep_all) > 0.0
        assert not mrf.is_feasible(keep_all)
        assert mrf.energy(keep_all) > mrf.soft_energy(keep_all)

    def test_state_size_checked(self, running_example_grounding):
        mrf = HingeLossMRF.from_program(running_example_grounding.program)
        with pytest.raises(Exception):
            mrf.energy([0.5])


class TestRounding:
    def test_threshold(self):
        assert threshold([0.9, 0.4, 0.5]) == [True, False, True]
        assert threshold([0.9, 0.4], cutoff=0.3) == [True, True]

    def test_repair_drops_weakest_fact(self):
        program, strong, weak, _ = _conflict_program()
        repaired = repair_hard(program, [True, True, True])
        assert repaired[strong.index] is True
        assert repaired[weak.index] is False

    def test_round_solution_end_to_end(self):
        program, strong, weak, free = _conflict_program()
        assignment = round_solution(program, [0.9, 0.8, 0.7])
        assert assignment == (True, False, True)

    def test_repair_coupled_hard_clauses_does_not_ping_pong(self):
        # Regression: two hard clauses sharing an atom with opposite
        # satisfying polarities.  The old greedy (cheapest atom first) kept
        # flipping the low-weight shared atom back and forth until the
        # iteration bound and raised InfeasibleProgramError on this
        # perfectly feasible program.
        program = GroundProgram()
        shared = program.add_atom(make_fact("x", "coach", "A", (1, 5), 0.55), is_evidence=True)
        other = program.add_atom(make_fact("x", "coach", "B", (2, 4), 0.9), is_evidence=True)
        for atom in (shared, other):
            program.add_clause([(atom.index, True)], atom.fact.log_weight, ClauseKind.EVIDENCE, "e")
        # Conflict clause wants shared=False or other=False; keeper clause
        # wants shared=True.  Only flipping `other` satisfies both.
        program.add_clause(
            [(shared.index, False), (other.index, False)], None, ClauseKind.CONSTRAINT, "c2"
        )
        program.add_clause([(shared.index, True)], None, ClauseKind.CONSTRAINT, "keep-shared")
        repaired = repair_hard(program, [True, True])
        assert repaired == [True, False]
        assert program.is_feasible(repaired)

    def test_repair_impossible_raises(self):
        program = GroundProgram()
        atom = program.add_atom(make_fact("x", "p", "A", (1, 5), 0.9), is_evidence=True)
        program.add_clause([(atom.index, True)], None, ClauseKind.CONSTRAINT, "must-true")
        program.add_clause([(atom.index, False)], None, ClauseKind.CONSTRAINT, "must-false")
        with pytest.raises(InfeasibleProgramError):
            round_solution(program, [0.5])
