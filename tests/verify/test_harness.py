"""Live end-to-end runs: record real concurrent executions, then check them.

These are the tests that quantify over scheduler nondeterminism: every run
drives a real :class:`~repro.serve.server.ResolutionService` (batcher,
session pool, per-session locks) from concurrent client threads and asserts
the recorded history admits a serialization.  The seed is drawn through
``audited_seed``, so a failing schedule prints its reproduction command.
"""

import pytest

from repro.verify import (
    WorkloadConfig,
    check_history,
    harness_server_config,
    record_workload,
)
from repro.verify.workloads import generate_trace
from repro.datasets import ranieri_extended_graph


class TestRecordedWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_workloads_are_serializable(self, system, checker, seed, audited_seed):
        workload = WorkloadConfig(
            seed=audited_seed(seed),
            clients=3,
            ops_per_client=5,
            sessions=2,
            malformed_ratio=0.1,
        )
        history = record_workload(system, workload)
        report = checker.check(history)
        assert report.ok, report.summary()

    def test_every_trace_op_is_recorded_with_provenance(self, clean_history):
        assert clean_history.metadata["workload"]["seed"] == 7
        assert clean_history.metadata["total_ops"] == len(clean_history)
        assert all(op.completed is not None for op in clean_history)

    def test_batcher_decisions_reference_recorded_resolves(self, clean_history):
        resolve_ids = {op.op_id for op in clean_history if op.kind == "resolve" and op.ok}
        grouped = {op_id for group in clean_history.groups for op_id in group}
        assert grouped <= resolve_ids
        assert set(clean_history.cache_hits) <= resolve_ids
        # One submission, one serving decision: no overlap, no duplicates.
        assert not (grouped & set(clean_history.cache_hits))
        flat = [op_id for group in clean_history.groups for op_id in group]
        assert len(flat) == len(set(flat))

    def test_malformed_bodies_answer_400_and_poison_nothing(self, system, checker):
        workload = WorkloadConfig(
            seed=5,
            clients=2,
            ops_per_client=8,
            sessions=1,
            malformed_ratio=1.0,
            resolve_ratio=0.5,
            read_ratio=0.0,
        )
        history = record_workload(system, workload)
        poisoned = [op for op in history if op.kind in ("resolve", "session_edit")]
        assert poisoned
        assert all(op.status == 400 for op in poisoned)
        report = checker.check(history)
        assert report.ok, report.summary()

    def test_hot_key_workload_exercises_coalescing_or_cache(self, system, checker, audited_seed):
        # Heavy resolve skew over few variants against a slow batching
        # window: the serving decisions under test (coalesced groups or
        # response-cache hits) must actually occur, and stay sound.
        workload = WorkloadConfig(
            seed=audited_seed(31),
            clients=4,
            ops_per_client=6,
            sessions=1,
            resolve_ratio=0.9,
            resolve_variants=2,
            zipf_alpha=2.0,
            burst_gap=0.0,
        )
        trace = generate_trace(ranieri_extended_graph(), workload)
        config = harness_server_config(trace, batch_delay=0.02, max_batch=16)
        from repro.verify import record_trace

        history = record_trace(system, trace, config=config)
        shared = sum(len(group) - 1 for group in history.groups) + len(history.cache_hits)
        assert shared > 0, "hot-key workload never shared a solve"
        report = checker.check(history)
        assert report.ok, report.summary()

    def test_check_history_convenience_wrapper(self, system, clean_history):
        assert check_history(system, clean_history).ok
