"""Determinism and shape tests for the trace-driven workload generator."""

import pytest

from repro.datasets import ranieri_extended_graph
from repro.verify import WorkloadConfig, generate_trace, zipf_weights


def trace_for(**kwargs):
    return generate_trace(ranieri_extended_graph(), WorkloadConfig(**kwargs))


class TestZipfWeights:
    def test_weights_are_positive_and_strictly_decreasing(self):
        weights = zipf_weights(5, 1.1)
        assert all(weight > 0 for weight in weights)
        assert weights == sorted(weights, reverse=True)
        assert len(set(weights)) == 5

    def test_alpha_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0] * 4

    def test_rejects_empty_rank_set(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"sessions": 0},
            {"noise": "white"},
            {"burst_size": 0},
            {"resolve_span": (0.9, 0.2)},
            {"resolve_span": (-0.1, 1.0)},
            {"resolve_span": (0.5, 1.5)},
        ],
    )
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = trace_for(seed=11)
        second = trace_for(seed=11)
        assert first.programs == second.programs
        assert first.owners == second.owners

    def test_different_seeds_differ(self):
        assert trace_for(seed=1).programs != trace_for(seed=2).programs


class TestTraceShape:
    def test_op_budget_and_session_ownership(self):
        trace = trace_for(seed=3, clients=3, ops_per_client=5, sessions=4)
        assert trace.total_ops == 3 * 5 + 4 + 4  # ops + creates + deletes
        assert set(trace.owners) == set(range(4))
        for session, owner in trace.owners.items():
            program = trace.programs[owner]
            kinds_for_session = [op.kind for op in program if op.session == session]
            # The owner creates first and deletes last.
            assert kinds_for_session[0] == "session_create"
            assert kinds_for_session[-1] == "session_delete"
            assert kinds_for_session.count("session_create") == 1
            assert kinds_for_session.count("session_delete") == 1

    def test_delete_sessions_can_be_disabled(self):
        trace = trace_for(seed=3, delete_sessions=False)
        assert all(op.kind != "session_delete" for program in trace.programs for op in program)

    def test_burst_arrival_delays(self):
        trace = trace_for(
            seed=5,
            clients=2,
            ops_per_client=7,
            burst_size=3,
            burst_gap=0.01,
            intra_gap=0.001,
        )
        for program in trace.programs:
            for index, op in enumerate(program):
                if index == 0:
                    assert op.delay == 0.0
                elif index % 3 == 0:
                    assert op.delay == 0.01
                else:
                    assert op.delay == 0.001

    def test_resolve_span_bounds_variant_sizes(self):
        pool_size = len(ranieri_extended_graph())
        trace = trace_for(
            seed=17, clients=2, ops_per_client=10, resolve_ratio=1.0,
            resolve_span=(0.8, 1.0),
        )
        resolves = [op for program in trace.programs for op in program if op.kind == "resolve"]
        assert resolves
        floor = int(0.8 * pool_size)
        for op in resolves:
            assert floor <= len(op.body["facts"]) <= pool_size

    def test_malformed_ratio_one_poisons_every_body_carrying_op(self):
        trace = trace_for(seed=9, clients=2, ops_per_client=8, malformed_ratio=1.0)
        flagged = [
            op
            for program in trace.programs
            for op in program
            if op.kind in ("resolve", "session_edit")
        ]
        assert flagged
        assert all(op.malformed for op in flagged)
        # Creates, reads, and deletes never carry adversarial bodies.
        assert all(
            not op.malformed
            for program in trace.programs
            for op in program
            if op.kind not in ("resolve", "session_edit")
        )


class TestNoiseModels:
    def _edit_bodies(self, noise, seed=13):
        trace = trace_for(
            seed=seed,
            noise=noise,
            clients=2,
            ops_per_client=12,
            resolve_ratio=0.0,
            read_ratio=0.0,
        )
        return [
            op.body for program in trace.programs for op in program if op.kind == "session_edit"
        ]

    def test_conflict_burst_adds_overlapping_same_predicate_pairs(self):
        bodies = self._edit_bodies("conflict_burst")
        assert bodies
        for body in bodies:
            assert body["removes"] == []
            assert body["adds"] and len(body["adds"]) % 2 == 0
            for first, second in zip(body["adds"][::2], body["adds"][1::2]):
                assert (first["s"], first["p"]) == (second["s"], second["p"])
                assert first["o"] != second["o"]
                a_start, a_end = first["interval"]
                b_start, b_end = second["interval"]
                assert a_start <= b_end and b_start <= a_end  # they overlap

    def test_flip_bodies_remove_and_re_add_the_same_facts(self):
        bodies = self._edit_bodies("flip")
        assert bodies
        for body in bodies:
            assert body["adds"] == body["removes"]

    def test_duplicate_bodies_only_re_add_with_bounded_confidence(self):
        bodies = self._edit_bodies("duplicate")
        assert bodies
        for body in bodies:
            assert body["removes"] == []
            assert all(0.0 < fact["confidence"] <= 1.0 for fact in body["adds"])

    def test_churn_only_removes_what_the_same_client_added(self):
        trace = trace_for(
            seed=21,
            noise="churn",
            clients=2,
            ops_per_client=15,
            resolve_ratio=0.0,
            read_ratio=0.0,
        )
        for program in trace.programs:
            ledgers = {}
            for op in program:
                if op.kind != "session_edit":
                    continue
                ledger = ledgers.setdefault(op.session, [])
                ledger.extend(op.body["adds"])
                for fact in op.body["removes"]:
                    assert fact in ledger, (
                        "churn removed a fact this client never added to " f"session {op.session}"
                    )
                    ledger.remove(fact)
