"""Committed violating histories must keep failing — forever.

Two fixtures pin real bug classes of the serving tier:

* ``regression_coalescing_history.json`` — a recorded run doctored into the
  collapsed-forwarding bug: two content-distinct resolves reported as one
  coalesced group, with one response overwritten by the other's payload.
  This is the bug class a missing ``graph_content_key`` guard reintroduces.
* ``regression_delete_race_history.json`` — the *actual* minimal
  sub-history of the delete/edit race the harness caught live (an edit
  acknowledged with 200 after the DELETE response had already pinned the
  session's final ``edits_applied``).  The fix is the
  ``SessionEntry.closed`` re-check; if it regresses, this history's bug
  class comes back.

If the checker ever reports these as serializable, the *checker* has
regressed, even if the server is fine — either way this must stay red in
the failing direction and green here.
"""

import pytest

from repro.cli import main
from repro.verify import History


def load_fixture(fixtures_dir, name):
    return History.load(fixtures_dir / name)


class TestCoalescingFixture:
    def test_checker_flags_the_forged_group(self, checker, fixtures_dir):
        history = load_fixture(fixtures_dir, "regression_coalescing_history.json")
        report = checker.check(history)
        kinds = {violation.kind for violation in report.violations}
        assert "coalescing" in kinds
        # The overwritten member also disagrees with the resolve oracle.
        assert "resolve_mismatch" in kinds

    def test_fixture_documents_its_provenance(self, fixtures_dir):
        history = load_fixture(fixtures_dir, "regression_coalescing_history.json")
        assert "note" in history.metadata


class TestDeleteRaceFixture:
    def test_checker_flags_the_race_as_unserializable(self, checker, fixtures_dir):
        history = load_fixture(fixtures_dir, "regression_delete_race_history.json")
        report = checker.check(history)
        kinds = {violation.kind for violation in report.violations}
        assert "unserializable" in kinds

    def test_race_evidence_is_minimal_session_history(self, fixtures_dir):
        history = load_fixture(fixtures_dir, "regression_delete_race_history.json")
        kinds = [op.kind for op in history]
        assert kinds[0] == "session_create"
        assert kinds[-1] == "session_delete"
        assert set(kinds[1:-1]) == {"session_edit"}
        # The caught contradiction: more acknowledged edits than the
        # delete's final count admits.
        delete = history.operations[-1]
        acknowledged = sum(1 for op in history if op.kind == "session_edit" and op.ok)
        assert delete.response["edits_applied"] < acknowledged


class TestVerifyCli:
    def test_expect_violation_passes_on_fixtures(self, fixtures_dir, capsys):
        exit_code = main(
            [
                "verify",
                str(fixtures_dir / "regression_coalescing_history.json"),
                str(fixtures_dir / "regression_delete_race_history.json"),
                "--expect-violation",
            ]
        )
        assert exit_code == 0
        assert "expected violations confirmed" in capsys.readouterr().out

    def test_fixtures_fail_a_plain_verify_run(self, fixtures_dir, capsys):
        exit_code = main(["verify", str(fixtures_dir / "regression_delete_race_history.json")])
        assert exit_code == 1
        assert "violation" in capsys.readouterr().out

    def test_save_failures_writes_history_and_report(self, fixtures_dir, tmp_path, capsys):
        save_dir = tmp_path / "failures"
        exit_code = main(
            [
                "verify",
                str(fixtures_dir / "regression_delete_race_history.json"),
                "--expect-violation",
                "--save-failures",
                str(save_dir),
            ]
        )
        assert exit_code == 0
        saved = sorted(path.name for path in save_dir.iterdir())
        assert any(name.startswith("history-") for name in saved)
        assert any(name.startswith("violations-") for name in saved)

    def test_expect_violation_rejects_clean_histories(self, clean_history, tmp_path, capsys):
        path = tmp_path / "clean.json"
        clean_history.save(path)
        exit_code = main(["verify", str(path), "--expect-violation"])
        assert exit_code == 1
        assert "found none" in capsys.readouterr().err
