"""Deterministic fault injection: schedules, seams, and client backoff.

Every fault class must be reproducible from its spec alone — the chaos
harness replays failing runs bit-for-bit from a seed, which only works if
``kind@point:at`` schedules fire at exactly the promised arrivals.  The
service-level tests here drive each class through a real
:class:`~repro.serve.server.ResolutionService` and pin the client-visible
outcome (escaping crash, 503 + Retry-After, 500, 504) that the retry
policy and the serializability checker are built around.
"""

import json
import time

import pytest

from repro.datasets import ranieri_graph
from repro.errors import TecoreError
from repro.kg.io import json_io
from repro.serve import RequestDeadlineExceeded, ServerConfig, ServiceOverloadedError
from repro.serve.server import ResolutionService
from repro.verify import RetryPolicy
from repro.verify.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultRule,
    InjectedCrash,
    parse_fault_spec,
    seeded_schedule,
)


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


class TestSpecsAndSchedules:
    def test_spec_roundtrip(self):
        rules = parse_fault_spec(
            "crash@wal.append:3,solver_slow@batcher.solve:1x5,disk_full@wal.append"
        )
        assert [rule.spec() for rule in rules] == [
            "crash@wal.append:3",
            "solver_slow@batcher.solve:1x5",
            "disk_full@wal.append:1",
        ]
        assert rules[1].count == 5

    @pytest.mark.parametrize(
        "bad", ["crash", "@wal.append", "made_up@wal.append", "crash@wal.append:0"]
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_seeded_schedule_is_deterministic(self):
        first = seeded_schedule(2017, faults=4)
        second = seeded_schedule(2017, faults=4)
        assert [r.spec() for r in first.rules] == [r.spec() for r in second.rules]
        assert [r.spec() for r in seeded_schedule(2018, faults=4).rules] != [
            r.spec() for r in first.rules
        ]

    def test_rule_fires_exactly_in_its_arrival_window(self):
        injector = FaultInjector([FaultRule("wal.append", "disk_full", at=2, count=2)])
        injector.fire("wal.append")  # arrival 1: clean
        for _ in range(2):  # arrivals 2 and 3: fault
            with pytest.raises(OSError):
                injector.fire("wal.append")
        injector.fire("wal.append")  # arrival 4: clean again
        assert injector.arrivals("wal.append") == 4
        assert [hit.arrival for hit in injector.fired] == [2, 3]

    def test_every_fault_kind_has_a_deterministic_effect(self):
        effects = {
            "crash": InjectedCrash,
            "disk_full": OSError,
            "solver_fail": TecoreError,
            "queue_saturate": ServiceOverloadedError,
        }
        for kind in FAULT_KINDS:
            point = f"seam.{kind}"
            injector = FaultInjector([FaultRule(point, kind, delay=0.01)])
            if kind in effects:
                with pytest.raises(effects[kind]):
                    injector.fire(point)
            else:  # fsync_delay / solver_slow stall instead of raising
                started = time.perf_counter()
                injector.fire(point)
                assert time.perf_counter() - started >= 0.01
            assert injector.summary()["fired"] == [{"point": point, "kind": kind, "arrival": 1}]


@pytest.fixture
def faulted_service(system):
    services = []

    def factory(rules, **config_kwargs):
        config_kwargs.setdefault("batch_delay", 0.001)
        service = ResolutionService(
            system, ServerConfig(**config_kwargs), injector=FaultInjector(rules)
        )
        services.append(service)
        return service

    yield factory
    for service in services:
        service.close()


class TestServiceSeams:
    def test_solver_fail_answers_500_without_killing_the_batcher(self, faulted_service):
        service = faulted_service([FaultRule("batcher.solve", "solver_fail", at=1)])
        graph = json_io.to_dict(ranieri_graph())
        status, payload = service.handle("POST", "/resolve", _body(graph))
        assert status == 500
        # The flush worker survived: the next batch resolves normally.
        status, _ = service.handle("POST", "/resolve", _body(graph))
        assert status == 200

    def test_queue_saturation_answers_503_with_retry_hint(self, faulted_service):
        service = faulted_service([FaultRule("batcher.submit", "queue_saturate", at=1)])
        status, payload = service.handle(
            "POST", "/resolve", _body(json_io.to_dict(ranieri_graph()))
        )
        assert status == 503
        assert payload["retry_after_seconds"] >= 1

    def test_solver_slow_trips_the_request_deadline(self, faulted_service):
        service = faulted_service(
            [FaultRule("batcher.solve", "solver_slow", at=1, count=5, delay=0.3)],
            request_deadline=0.05,
        )
        status, payload = service.handle(
            "POST", "/resolve", _body(json_io.to_dict(ranieri_graph()))
        )
        assert status == 504
        assert payload["retry_after_seconds"] >= 1

    def test_dispatch_crash_escapes_the_request_guard(self, faulted_service):
        service = faulted_service([FaultRule("server.dispatch", "crash", at=1)])
        with pytest.raises(InjectedCrash):
            service.handle("GET", "/healthz", b"")

    def test_deadline_exceeded_is_a_tecore_error(self):
        assert issubclass(RequestDeadlineExceeded, TecoreError)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(10) == pytest.approx(1.0)

    def test_retry_after_hint_sets_the_floor(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        assert policy.delay(0, retry_after=0.5) == pytest.approx(0.5)
        # ...but the hint is still capped, and never lowers a larger backoff.
        assert policy.delay(10, retry_after=30.0) == pytest.approx(1.0)
        assert policy.delay(3, retry_after=0.01) == pytest.approx(0.8)
