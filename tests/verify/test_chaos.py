"""The chaos harness end-to-end: kill a real server, recover, certify.

One small in-process run of :func:`repro.verify.run_chaos` — a live
``tecore serve --wal-dir`` subprocess under a seeded fault schedule,
concurrent retrying HTTP clients, a SIGKILL mid-workload, a fault-free
restart on the same WAL directory, and a serializability check of the
combined client-visible history.  The CI chaos smoke and the nightly
crash-recovery soak run bigger shapes of the same cycle; this test keeps
the harness itself honest on every test run with the smallest shape that
still crosses the crash.
"""

import pytest

from repro.verify import History, run_chaos
from repro.verify.chaos import ChaosConfig, ChaosReport, _fault_spec, free_port
from repro.verify.faults import parse_fault_spec

SMALL = ChaosConfig(
    seed=2017,
    clients=2,
    ops_per_client=3,
    sessions=1,
    kill_after=2,
    fault_count=1,
    request_deadline=10.0,
)


class TestHelpers:
    def test_fault_spec_prefers_the_explicit_override(self):
        config = ChaosConfig(faults="disk_full@wal.append:2")
        assert _fault_spec(config) == "disk_full@wal.append:2"

    def test_seeded_fault_spec_is_deterministic_and_parseable(self):
        spec = _fault_spec(SMALL)
        assert spec == _fault_spec(SMALL)
        assert len(parse_fault_spec(spec)) == SMALL.fault_count

    def test_free_port_is_bindable(self):
        import socket

        port = free_port()
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.bind(("127.0.0.1", port))

    def test_report_as_dict_round_trips_every_field(self):
        report = ChaosReport(
            seed=1,
            port=2,
            wal_dir="w",
            fault_spec="s",
            total_ops=3,
            completed_ops=2,
            pending_ops=1,
            retries=0,
            disconnects=4,
            killed_after=2,
            recovered_sessions=1,
        )
        payload = report.as_dict()
        assert payload["seed"] == 1 and payload["disconnects"] == 4
        assert payload["serializable"] is None and payload["history_path"] is None


class TestChaosEndToEnd:
    @pytest.fixture(scope="class")
    def chaos_run(self, tmp_path_factory):
        history_path = tmp_path_factory.mktemp("chaos") / "history.json"
        report, history = run_chaos(SMALL, history_path=history_path, check=True)
        return report, history, history_path

    def test_recovered_history_is_serializable(self, chaos_run):
        report, _, _ = chaos_run
        assert report.serializable is True, report.violations
        assert report.violations == []

    def test_the_kill_really_interrupted_the_workload(self, chaos_run):
        report, history, _ = chaos_run
        # The SIGKILL landed mid-run: some client-visible work completed
        # before it, and every client still drained its whole program
        # (completed or pending-at-the-crash, never silently dropped).
        assert report.killed_after >= SMALL.kill_after
        assert report.total_ops >= SMALL.clients * SMALL.ops_per_client
        assert report.completed_ops + report.pending_ops == report.total_ops
        assert len(history) == report.total_ops

    def test_saved_history_reloads_with_chaos_provenance(self, chaos_run):
        report, _, history_path = chaos_run
        reloaded = History.load(history_path)
        assert reloaded.metadata["workload"] == "chaos"
        assert reloaded.metadata["fault_spec"] == report.fault_spec
        assert reloaded.metadata["killed_after_ops"] == report.killed_after
        assert len(reloaded) == report.total_ops


SHARDED = ChaosConfig(
    seed=2018,
    clients=2,
    ops_per_client=3,
    sessions=2,
    kill_after=2,
    fault_count=1,
    request_deadline=10.0,
    workers=2,
    kill="worker",
)


class TestShardedChaosEndToEnd:
    """kill='worker': the front-end survives, respawns, replays the shard."""

    @pytest.fixture(scope="class")
    def sharded_run(self, tmp_path_factory):
        history_path = tmp_path_factory.mktemp("chaos-sharded") / "history.json"
        report, history = run_chaos(SHARDED, history_path=history_path, check=True)
        return report, history

    def test_recovered_history_is_serializable(self, sharded_run):
        report, _ = sharded_run
        assert report.serializable is True, report.violations
        assert report.violations == []

    def test_the_front_end_respawned_the_killed_worker(self, sharded_run):
        report, history = sharded_run
        assert report.kill == "worker"
        assert report.workers == SHARDED.workers
        assert report.worker_respawns >= 1
        assert report.killed_after >= SHARDED.kill_after
        assert report.completed_ops + report.pending_ops == report.total_ops
        assert len(history) == report.total_ops

    def test_report_round_trips_the_sharding_fields(self, sharded_run):
        report, _ = sharded_run
        payload = report.as_dict()
        assert payload["workers"] == 2
        assert payload["kill"] == "worker"
        assert payload["worker_respawns"] == report.worker_respawns
