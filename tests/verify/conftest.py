"""Shared fixtures for the concurrency-correctness harness tests.

``system`` and ``checker`` are module-scoped: one oracle serves every test
in a module and its resolve cache amortises across checks (resolution is a
pure function of graph content).  ``clean_history`` is one real recorded
execution shared by all the corruption-injection tests — each test reloads
it through the JSON codec before mutating, so the fixture stays pristine.
"""

from pathlib import Path

import pytest

from repro import TeCoRe
from repro.verify import SerializabilityChecker, WorkloadConfig, record_workload

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="module")
def system():
    return TeCoRe.from_pack("running-example", solver="nrockit")


@pytest.fixture(scope="module")
def checker(system):
    return SerializabilityChecker(system)


@pytest.fixture(scope="module")
def clean_history(system):
    workload = WorkloadConfig(seed=7, clients=3, ops_per_client=6, sessions=2, malformed_ratio=0.1)
    return record_workload(system, workload)


@pytest.fixture
def fixtures_dir():
    return FIXTURES_DIR
