"""Unit tests for the operation-history model and the thread-safe recorder."""

import pytest

from repro.verify import HISTORY_FORMAT_VERSION, History, HistoryRecorder, Operation


class TestRecorderClock:
    def test_every_event_draws_a_distinct_increasing_tick(self):
        recorder = HistoryRecorder()
        first = recorder.begin("resolve", request={"facts": []})
        second = recorder.begin("session_read", session_id="abc")
        recorder.complete(first, 200, {"answer": 1})
        recorder.complete(second, 200, {"answer": 2})
        ticks = [first.invoked, second.invoked, first.completed, second.completed]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == 4

    def test_happens_before_is_real_time_order(self):
        recorder = HistoryRecorder()
        first = recorder.begin("resolve")
        second = recorder.begin("resolve")  # overlaps ``first``
        recorder.complete(first, 200, {})
        third = recorder.begin("resolve")  # invoked after ``first`` completed
        recorder.complete(second, 200, {})
        recorder.complete(third, 200, {})
        assert first.happens_before(third)
        assert not first.happens_before(second)
        assert not second.happens_before(first)
        assert not third.happens_before(first)

    def test_in_flight_operation_precedes_nothing(self):
        recorder = HistoryRecorder()
        open_op = recorder.begin("resolve")
        later = recorder.begin("resolve")
        assert open_op.completed is None
        assert not open_op.happens_before(later)
        assert not open_op.ok

    def test_observer_seam_drops_untagged_submissions(self):
        # Requests submitted without a recorder tag (op is None) reach the
        # batcher with tag None; the recorder must not fabricate op-ids.
        recorder = HistoryRecorder()
        recorder.on_flush([[3, None, 4], [None], [7]])
        recorder.on_cache_hit(9)
        history = recorder.history()
        assert history.groups == [[3, 4], [7]]
        assert history.cache_hits == [9]

    def test_snapshot_is_isolated_from_later_operations(self):
        recorder = HistoryRecorder()
        recorder.complete(recorder.begin("resolve"), 200, {})
        snapshot = recorder.history(metadata={"run": 1})
        recorder.begin("resolve")
        assert len(snapshot) == 1
        assert snapshot.metadata == {"run": 1}
        assert len(recorder.history()) == 2

    def test_status_classifies_ok(self):
        recorder = HistoryRecorder()
        ok = recorder.begin("session_edit", session_id="s")
        recorder.complete(ok, 200, {})
        failed = recorder.begin("session_edit", session_id="s")
        recorder.complete(failed, 404, {"error": "no session"})
        assert ok.ok and not failed.ok


class TestHistorySerialization:
    def _sample(self):
        return History(
            operations=[
                Operation(
                    op_id=0,
                    kind="session_create",
                    invoked=1,
                    request={"graph": {"name": "g", "facts": []}},
                    completed=2,
                    status=201,
                    response={"session_id": "aa", "result": {}},
                ),
                Operation(
                    op_id=1,
                    kind="resolve",
                    invoked=3,
                    request={"name": "v", "facts": []},
                    completed=4,
                    status=200,
                    response={"objective": 0.0},
                ),
            ],
            groups=[[1]],
            cache_hits=[],
            metadata={"seed": 7},
        )

    def test_save_load_round_trip_is_exact(self, tmp_path):
        history = self._sample()
        path = tmp_path / "history.json"
        history.save(path)
        assert History.load(path).to_dict() == history.to_dict()

    def test_version_mismatch_is_rejected(self):
        document = self._sample().to_dict()
        document["version"] = HISTORY_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            History.from_dict(document)

    def test_by_id_lookup(self):
        history = self._sample()
        assert history.by_id(1).kind == "resolve"
        with pytest.raises(KeyError):
            history.by_id(99)

    def test_session_ids_cover_create_responses_and_routed_ops(self):
        history = History(
            operations=[
                Operation(
                    op_id=0,
                    kind="session_create",
                    invoked=1,
                    completed=2,
                    status=201,
                    response={"session_id": "aa"},
                ),
                Operation(
                    op_id=1,
                    kind="session_edit",
                    invoked=3,
                    session_id="bb",
                    completed=4,
                    status=404,
                    response={},
                ),
                Operation(
                    op_id=2,
                    kind="session_read",
                    invoked=5,
                    session_id="aa",
                    completed=6,
                    status=200,
                    response={},
                ),
            ]
        )
        assert history.session_ids() == ["aa", "bb"]
