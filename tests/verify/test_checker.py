"""Serializability-checker tests: clean histories pass, injected bugs fail.

Every injection starts from one real recorded execution
(``clean_history``), reloaded through the JSON codec so mutations never
leak between tests.  The injections are the bug classes the checker
exists to catch: tampered responses, miscounted deletes, corrupted
resolves, unsound coalescing, and impossible 404s.
"""

import json

import pytest

from repro.verify import (
    History,
    Operation,
    SerializabilityChecker,
)
from repro.serve.protocol import decode_graph, graph_content_key
from repro.verify.checker import canonical


def reload(history):
    # Through the JSON codec, not just to_dict/from_dict: the dict forms
    # alias the operations' nested request/response objects, and these
    # tests mutate them — the shared fixture must stay pristine.
    return History.from_dict(json.loads(json.dumps(history.to_dict())))


def first_op(history, predicate):
    for op in history.operations:
        if predicate(op):
            return op
    raise AssertionError("recorded history lacks the op shape this test needs")


def next_op_id(history):
    return max(op.op_id for op in history.operations) + 1


class TestCleanHistories:
    def test_recorded_history_is_serializable(self, checker, clean_history):
        report = checker.check(clean_history)
        assert report.ok, report.summary()
        assert report.stats["operations"] == len(clean_history)
        assert report.stats["sessions_checked"] == 2
        assert "serializable" in report.summary()

    def test_round_tripped_history_still_passes(self, checker, clean_history, tmp_path):
        path = tmp_path / "history.json"
        clean_history.save(path)
        report = checker.check(History.load(path))
        assert report.ok, report.summary()


class TestInjectedSessionViolations:
    def test_tampered_edit_response_is_unserializable(self, checker, clean_history):
        history = reload(clean_history)
        victim = first_op(history, lambda op: op.kind == "session_edit" and op.ok)
        victim.response["result"]["tampered"] = True
        report = checker.check(history)
        unserializable = [v for v in report.violations if v.kind == "unserializable"]
        assert unserializable, report.summary()
        violation = unserializable[0]
        assert victim.op_id in violation.op_ids
        # The minimal sub-history is self-contained evidence: smaller than
        # the full history and still failing when checked on its own.
        sub = History.from_dict(violation.sub_history)
        assert len(sub) <= len(history)
        assert any(op.op_id == victim.op_id for op in sub)
        assert not checker.check(sub).ok

    def test_miscounted_delete_is_unserializable(self, checker, clean_history):
        # The exact signature of the delete/edit race the harness caught
        # live: the delete's final edit count disagrees with the 200s.
        history = reload(clean_history)
        victim = first_op(history, lambda op: op.kind == "session_delete" and op.ok)
        victim.response["edits_applied"] += 1
        report = checker.check(history)
        assert any(v.kind == "unserializable" for v in report.violations)

    def test_spurious_404_on_a_live_session_is_flagged(self, checker, system, clean_history):
        history = reload(clean_history)
        delete = first_op(history, lambda op: op.kind == "session_delete" and op.ok)
        ghost = Operation(
            op_id=next_op_id(history),
            kind="session_read",
            invoked=delete.invoked - 2,
            session_id=delete.session_id,
            completed=delete.invoked - 1,  # completed before the delete began
            status=404,
            response={"error": "no session"},
        )
        history.operations.append(ghost)
        report = checker.check(history)
        assert any(v.kind == "spurious_not_found" for v in report.violations)
        # With an eviction-capable pool the same 404 is legal.
        relaxed = SerializabilityChecker(system, lru_evictions=True)
        assert relaxed.check(history).ok

    def test_phantom_session_is_flagged(self, checker):
        history = History(
            operations=[
                Operation(
                    op_id=0,
                    kind="session_read",
                    invoked=1,
                    session_id="feedface00000000",
                    completed=2,
                    status=200,
                    response={"session_id": "feedface00000000", "result": {}},
                )
            ]
        )
        report = checker.check(history)
        assert [v.kind for v in report.violations] == ["phantom_session"]

    def test_double_delete_is_flagged(self, checker, clean_history):
        history = reload(clean_history)
        delete = first_op(history, lambda op: op.kind == "session_delete" and op.ok)
        clone = Operation(
            op_id=next_op_id(history),
            kind="session_delete",
            invoked=delete.completed + 1,
            session_id=delete.session_id,
            completed=delete.completed + 2,
            status=200,
            response=dict(delete.response),
        )
        history.operations.append(clone)
        report = checker.check(history)
        assert any(v.kind == "double_delete" for v in report.violations)

    def test_duplicate_session_id_is_flagged(self, checker, clean_history):
        history = reload(clean_history)
        create = first_op(history, lambda op: op.kind == "session_create" and op.ok)
        clone = Operation(
            op_id=next_op_id(history),
            kind="session_create",
            invoked=create.completed + 1,
            request=dict(create.request or {}),
            completed=create.completed + 2,
            status=201,
            response=dict(create.response),
        )
        history.operations.append(clone)
        report = checker.check(history)
        assert any(v.kind == "duplicate_session_id" for v in report.violations)

    def test_search_budget_exhaustion_is_reported_not_hung(self, system, clean_history):
        strapped = SerializabilityChecker(system, max_search_steps=0)
        report = strapped.check(reload(clean_history))
        assert any(v.kind == "search_budget_exhausted" for v in report.violations)


class TestInjectedBatchingViolations:
    def test_corrupted_resolve_response_is_flagged(self, checker, clean_history):
        history = reload(clean_history)
        victim = first_op(history, lambda op: op.kind == "resolve" and op.ok)
        victim.response["forged_field"] = True
        report = checker.check(history)
        mismatches = [v for v in report.violations if v.kind == "resolve_mismatch"]
        assert mismatches
        assert victim.op_id in mismatches[0].op_ids

    def test_mixed_content_coalesced_group_is_flagged(self, checker, clean_history):
        history = reload(clean_history)
        resolves = [
            op
            for op in history.operations
            if op.kind == "resolve" and op.ok and op.request is not None
        ]
        distinct = {}
        for op in resolves:
            distinct.setdefault(graph_content_key(decode_graph(op.request)), op)
        assert len(distinct) >= 2, "workload produced fewer than 2 resolve variants"
        first, second = list(distinct.values())[:2]
        merged = {first.op_id, second.op_id}
        # Forge the bug: pull the victims out of their genuine groups and
        # cache-hit records, then report them as one coalesced group.
        history.groups = [
            [op_id for op_id in group if op_id not in merged] for group in history.groups
        ]
        history.groups = [group for group in history.groups if group]
        history.cache_hits = [op_id for op_id in history.cache_hits if op_id not in merged]
        history.groups.append(sorted(merged))
        report = checker.check(history)
        coalescing = [v for v in report.violations if v.kind == "coalescing"]
        assert coalescing
        assert any("content-distinct" in v.description for v in coalescing)

    def test_duplicate_group_membership_is_flagged(self, checker, clean_history):
        history = reload(clean_history)
        grouped = [group for group in history.groups if group]
        assert grouped, "recorded history flushed no groups"
        history.groups.append([grouped[0][0]])  # one submission, two flushes
        report = checker.check(history)
        assert any(
            v.kind == "coalescing" and "more than one" in v.description for v in report.violations
        )


class TestCanonicalForm:
    def test_strips_timings_and_normalises_sequences(self):
        payload = {
            "grounding_seconds": 3.0,
            "result": {"runtime_seconds": 1.2, "objective": (1, 2)},
        }
        assert canonical(payload) == {"result": {"objective": [1, 2]}}

    def test_equal_content_compares_equal_across_codecs(self):
        in_memory = {"a": (1, 2), "solve_seconds": 0.5}
        reloaded = {"a": [1, 2]}
        assert canonical(in_memory) == canonical(reloaded)
