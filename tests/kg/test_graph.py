"""Unit tests for the temporal knowledge-graph store."""

import pytest

from repro.errors import InvalidFactError
from repro.kg import IRI, TemporalKnowledgeGraph
from repro.temporal import TimeDomain, TimeInterval


@pytest.fixture
def career_graph():
    graph = TemporalKnowledgeGraph(name="career")
    graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
    graph.add(("CR", "coach", "Leicester", (2015, 2017), 0.7))
    graph.add(("CR", "playsFor", "Palermo", (1984, 1986), 0.5))
    graph.add(("JM", "coach", "Chelsea", (2004, 2007), 0.95))
    return graph


class TestAddRemove:
    def test_add_and_len(self, career_graph):
        assert len(career_graph) == 4

    def test_duplicate_statement_keeps_max_confidence(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("a", "p", "b", (1, 2), 0.4))
        graph.add(("a", "p", "b", (1, 2), 0.8))
        graph.add(("a", "p", "b", (1, 2), 0.6))
        assert len(graph) == 1
        assert graph.facts()[0].confidence == pytest.approx(0.8)

    def test_contains(self, career_graph):
        assert ("CR", "coach", "Chelsea", (2000, 2004), 0.9) in career_graph
        assert ("CR", "coach", "Chelsea", (2000, 2004)) in career_graph  # confidence ignored
        assert ("CR", "coach", "Arsenal", (2000, 2004)) not in career_graph
        assert "not a fact" not in career_graph

    def test_remove(self, career_graph):
        assert career_graph.remove(("CR", "coach", "Chelsea", (2000, 2004)))
        assert len(career_graph) == 3
        assert not career_graph.remove(("CR", "coach", "Chelsea", (2000, 2004)))
        assert career_graph.find(predicate="coach", obj="Chelsea") != []

    def test_discard_all(self, career_graph):
        removed = career_graph.discard_all(
            [("CR", "coach", "Chelsea", (2000, 2004)), ("nobody", "coach", "X", (1, 2))]
        )
        assert removed == 1

    def test_add_all_returns_new_count(self):
        graph = TemporalKnowledgeGraph()
        added = graph.add_all(
            [("a", "p", "b", (1, 2), 0.5), ("a", "p", "b", (1, 2), 0.9), ("c", "p", "d", (1, 2))]
        )
        assert added == 2

    def test_domain_enforced(self):
        graph = TemporalKnowledgeGraph(domain=TimeDomain(1900, 2000))
        with pytest.raises(InvalidFactError):
            graph.add(("a", "p", "b", (1990, 2010)))

    def test_insertion_order_preserved(self, career_graph):
        subjects = [str(fact.subject) for fact in career_graph]
        assert subjects == ["CR", "CR", "CR", "JM"]


class TestQueries:
    def test_find_by_subject(self, career_graph):
        assert len(career_graph.find(subject="CR")) == 3

    def test_find_by_predicate(self, career_graph):
        assert len(career_graph.by_predicate("coach")) == 3

    def test_find_by_subject_and_predicate(self, career_graph):
        facts = career_graph.find(subject="CR", predicate="coach")
        assert {str(fact.object) for fact in facts} == {"Chelsea", "Leicester"}

    def test_find_by_object(self, career_graph):
        assert len(career_graph.find(obj="Chelsea")) == 2

    def test_find_with_temporal_overlap(self, career_graph):
        facts = career_graph.find(predicate="coach", overlapping=TimeInterval(2003, 2005))
        assert {str(fact.subject) for fact in facts} == {"CR", "JM"}

    def test_find_all_wildcards(self, career_graph):
        assert len(career_graph.find()) == 4

    def test_find_no_match(self, career_graph):
        assert career_graph.find(subject="Nobody") == []

    def test_predicates_sorted(self, career_graph):
        assert [p.value for p in career_graph.predicates()] == ["coach", "playsFor"]

    def test_subjects_and_entities(self, career_graph):
        assert {str(s) for s in career_graph.subjects()} == {"CR", "JM"}
        entity_names = {str(e) for e in career_graph.entities()}
        assert {"CR", "JM", "Chelsea", "Leicester", "Palermo"} <= entity_names

    def test_indexes_updated_after_remove(self, career_graph):
        career_graph.remove(("JM", "coach", "Chelsea", (2004, 2007)))
        assert len(career_graph.find(obj="Chelsea")) == 1
        assert {str(s) for s in career_graph.subjects()} == {"CR"}


class TestWholeGraphOperations:
    def test_copy_is_independent(self, career_graph):
        clone = career_graph.copy()
        clone.add(("new", "coach", "Club", (1990, 1991)))
        assert len(clone) == len(career_graph) + 1

    def test_filter(self, career_graph):
        coaches = career_graph.filter(lambda fact: fact.predicate.value == "coach")
        assert len(coaches) == 3

    def test_above_confidence(self, career_graph):
        assert len(career_graph.above_confidence(0.8)) == 2

    def test_merge_takes_max_confidence(self, career_graph):
        other = TemporalKnowledgeGraph(name="other")
        other.add(("CR", "coach", "Chelsea", (2000, 2004), 0.95))
        other.add(("ZZ", "coach", "Roma", (1999, 2000), 0.5))
        merged = career_graph.merge(other)
        assert len(merged) == 5
        chelsea = merged.find(subject="CR", obj="Chelsea")[0]
        assert chelsea.confidence == pytest.approx(0.95)

    def test_difference(self, career_graph):
        other = career_graph.filter(lambda fact: fact.predicate.value == "coach")
        missing = career_graph.difference(other)
        assert len(missing) == 1
        assert missing[0].predicate == IRI("playsFor")

    def test_coalesced_merges_adjacent_spells(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("CR", "coach", "Chelsea", (2000, 2002), 0.8))
        graph.add(("CR", "coach", "Chelsea", (2003, 2004), 0.9))
        graph.add(("CR", "coach", "Leicester", (2015, 2017), 0.7))
        coalesced = graph.coalesced()
        chelsea = coalesced.find(obj="Chelsea")
        assert len(chelsea) == 1
        assert chelsea[0].interval == TimeInterval(2000, 2004)
        assert chelsea[0].confidence == pytest.approx(0.9)

    def test_spanning_domain(self, career_graph):
        domain = career_graph.spanning_domain()
        assert domain.start == 1984
        assert domain.end == 2017

    def test_total_confidence(self, career_graph):
        assert career_graph.total_confidence() == pytest.approx(0.9 + 0.7 + 0.5 + 0.95)

    def test_repr(self, career_graph):
        assert "career" in repr(career_graph)
        assert "4" in repr(career_graph)
