"""Unit tests for the columnar fact store and its join primitives."""

import numpy as np
import pytest

from repro.kg import ColumnarFactStore, IRI, TermInterner, make_fact
from repro.kg.columnar import composite_keys, merge_join


def sample_facts():
    return [
        make_fact("A", "playsFor", "T1", (2000, 2004), 0.9),
        make_fact("B", "playsFor", "T1", (2001, 2003), 0.8),
        make_fact("A", "coach", "T2", (2010, 2012), 0.7),
        make_fact("B", "playsFor", "T2", (2005, 2006), 0.6),
    ]


class TestTermInterner:
    def test_roundtrip_and_stability(self):
        interner = TermInterner()
        first = interner.intern(IRI("A"))
        second = interner.intern(IRI("B"))
        assert first != second
        assert interner.intern(IRI("A")) == first  # idempotent
        assert interner.term(first) == IRI("A")
        assert interner.terms([second, first]) == [IRI("B"), IRI("A")]
        assert len(interner) == 2

    def test_lookup_does_not_intern(self):
        interner = TermInterner()
        assert interner.lookup(IRI("missing")) is None
        assert len(interner) == 0


class TestColumnarFactStore:
    def test_blocks_and_columns(self):
        store = ColumnarFactStore(sample_facts())
        assert len(store) == 4
        plays = store.block_for(IRI("playsFor"))
        assert plays is not None and len(plays) == 3
        columns = plays.columns()
        assert columns["begin"].tolist() == [2000, 2001, 2005]
        assert columns["end"].tolist() == [2004, 2003, 2006]
        # Equal subjects intern to equal ids across blocks.
        coach = store.block_for(IRI("coach"))
        assert coach.columns()["subject"][0] == columns["subject"][0]

    def test_statement_dedup(self):
        store = ColumnarFactStore()
        fact = make_fact("A", "p", "B", (1, 2), 0.5)
        assert store.add(fact) is True
        assert store.add(fact.with_confidence(0.9)) is False  # same statement
        assert len(store) == 1
        assert fact in store

    def test_round_labels_and_lazy_rebuild(self):
        store = ColumnarFactStore(sample_facts(), round_number=0)
        block = store.block_for(IRI("playsFor"))
        assert block.columns()["round"].tolist() == [0, 0, 0]
        store.add(make_fact("C", "playsFor", "T3", (1999, 2000), 0.5), round_number=2)
        # Columns are rebuilt lazily and include the new row.
        assert block.columns()["round"].tolist() == [0, 0, 0, 2]
        assert block.column("subject").shape == (4,)

    def test_tags_and_tagged_add(self):
        store = ColumnarFactStore()
        store.add(make_fact("A", "p", "B", (1, 2), 0.5), 0, tag=7)
        store.add(make_fact("A", "p", "C", (1, 2), 0.5), 1, tag=9)
        # Re-adding an existing statement keeps the original tag.
        assert store.add(make_fact("A", "p", "B", (1, 2), 0.6), 1, tag=42) is False
        block = store.block_for(IRI("p"))
        assert block.tags_array().tolist() == [7, 9]

    def test_rank_array_orders_like_sort_keys(self):
        store = ColumnarFactStore(sample_facts())
        block = store.block_for(IRI("playsFor"))
        ranks = block.rank_array()
        by_rank = [fact for _, fact in sorted(zip(ranks.tolist(), block.facts))]
        assert by_rank == sorted(block.facts, key=lambda fact: fact.sort_key())

    def test_iter_facts_covers_everything(self):
        facts = sample_facts()
        store = ColumnarFactStore(facts)
        assert {f.statement_key for f in store.iter_facts()} == {f.statement_key for f in facts}


class TestMergeJoin:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        left = rng.integers(0, 12, size=40)
        right = rng.integers(0, 12, size=55)
        left_index, right_index = merge_join(left, right)
        got = sorted(zip(left_index.tolist(), right_index.tolist()))
        expected = sorted(
            (i, j) for i in range(len(left)) for j in range(len(right)) if left[i] == right[j]
        )
        assert got == expected

    def test_precomputed_right_order(self):
        left = np.asarray([2, 9, 4], dtype=np.int64)
        right = np.asarray([4, 2, 2, 7], dtype=np.int64)
        order = np.argsort(right, kind="stable")
        with_order = merge_join(left, right, right_order=order)
        without = merge_join(left, right)
        assert sorted(zip(*map(np.ndarray.tolist, with_order))) == sorted(
            zip(*map(np.ndarray.tolist, without))
        )

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        keys = np.asarray([1, 2, 3], dtype=np.int64)
        for left, right in ((empty, keys), (keys, empty), (empty, empty)):
            left_index, right_index = merge_join(left, right)
            assert left_index.size == 0 and right_index.size == 0


class TestCompositeKeys:
    def test_equal_tuples_encode_equal(self):
        left_cols = [np.asarray([1, 2, 1]), np.asarray([5, 5, 6])]
        right_cols = [np.asarray([1, 1, 2]), np.asarray([5, 6, 5])]
        left, right = composite_keys(left_cols, right_cols)
        # (1,5) on the left matches (1,5) on the right and nothing else.
        assert left[0] == right[0]
        assert left[0] != right[1]
        assert left[2] == right[1]
        assert left[1] == right[2]

    def test_single_column_passthrough(self):
        column = np.asarray([3, 1, 4])
        left, right = composite_keys([column], [column])
        assert left is column and right is column

    def test_overflow_refactorisation(self):
        """Huge value ranges force the dense-recoding path, keeping joins exact."""
        big = np.int64(1) << 40
        left_cols = [np.asarray([0, big, 7]), np.asarray([big, 0, 7]), np.asarray([1, 2, 1])]
        right_cols = [np.asarray([7, 0, big]), np.asarray([7, big, 0]), np.asarray([1, 1, 2])]
        left, right = composite_keys(left_cols, right_cols)
        # The right rows are a rotation of the left rows: (0,big,1),
        # (big,0,2), (7,7,1) → equal tuples must encode equal...
        assert left[0] == right[1]
        assert left[1] == right[2]
        assert left[2] == right[0]
        # ...and distinct tuples must stay distinct.
        assert left[0] != right[0]
        assert left[1] != right[1]
        assert left[2] != right[2]

    def test_giant_value_ranges_never_wrap(self):
        """Even when every column spans ~2^55, equal-tuple encoding is exact.

        Ranges this wide force both re-factorisation paths: the partial-key
        compression and the per-column dense recoding.
        """
        rng = np.random.default_rng(3)
        huge = np.int64(1) << 55
        rows = 64
        columns = [rng.integers(0, huge, size=rows) for _ in range(4)]
        left_cols = [c.copy() for c in columns]
        # Right side: a shuffled copy of the left rows plus fresh rows.
        perm = rng.permutation(rows)
        right_cols = [np.concatenate([c[perm], rng.integers(0, huge, size=rows)]) for c in columns]
        left, right = composite_keys(left_cols, right_cols)
        left_tuples = list(zip(*(c.tolist() for c in left_cols)))
        right_tuples = list(zip(*(c.tolist() for c in right_cols)))
        for i, lt in enumerate(left_tuples):
            for j, rt in enumerate(right_tuples):
                assert (left[i] == right[j]) == (lt == rt)

    def test_negative_values(self):
        left_cols = [np.asarray([-5, 3]), np.asarray([2, -2])]
        right_cols = [np.asarray([3, -5]), np.asarray([-2, 2])]
        left, right = composite_keys(left_cols, right_cols)
        assert left[0] == right[1]
        assert left[1] == right[0]
