"""Unit tests for RDF-style terms."""

import pytest

from repro.errors import InvalidTermError
from repro.kg import IRI, BlankNode, Literal, term_key, to_subject, to_term


class TestIRI:
    def test_construction(self):
        assert IRI("ClaudioRanieri").value == "ClaudioRanieri"

    def test_empty_rejected(self):
        with pytest.raises(InvalidTermError):
            IRI("")

    def test_whitespace_rejected(self):
        with pytest.raises(InvalidTermError):
            IRI("Claudio Ranieri")

    def test_local_name_from_hash(self):
        assert IRI("http://example.org/person#CR").local_name == "CR"

    def test_local_name_from_path(self):
        assert IRI("http://www.wikidata.org/entity/Q42").local_name == "Q42"

    def test_local_name_plain(self):
        assert IRI("Chelsea").local_name == "Chelsea"

    def test_equality_and_ordering(self):
        assert IRI("A") == IRI("A")
        assert IRI("A") < IRI("B")


class TestLiteral:
    def test_string_literal(self):
        literal = Literal("hello")
        assert literal.datatype == "string"
        assert str(literal) == '"hello"'

    def test_integer_literal(self):
        literal = Literal.integer(1951)
        assert literal.as_int() == 1951
        assert str(literal) == "1951"

    def test_year_literal(self):
        assert Literal.year(1984).datatype == "gYear"

    def test_non_string_lexical_rejected(self):
        with pytest.raises(InvalidTermError):
            Literal(1951)  # type: ignore[arg-type]

    def test_datatype_part_of_identity(self):
        assert Literal("1951", "integer") != Literal("1951", "string")


class TestBlankNode:
    def test_construction_and_str(self):
        assert str(BlankNode("b1")) == "_:b1"

    def test_empty_label_rejected(self):
        with pytest.raises(InvalidTermError):
            BlankNode("")


class TestCoercion:
    def test_pass_through(self):
        term = IRI("CR")
        assert to_term(term) is term

    def test_int_becomes_integer_literal(self):
        assert to_term(1951) == Literal.integer(1951)

    def test_quoted_string_becomes_literal(self):
        assert to_term('"Greater London"') == Literal("Greater London")

    def test_blank_node_prefix(self):
        assert to_term("_:x1") == BlankNode("x1")

    def test_plain_string_becomes_iri(self):
        assert to_term("Chelsea") == IRI("Chelsea")

    def test_bool_rejected(self):
        with pytest.raises(InvalidTermError):
            to_term(True)

    def test_subject_rejects_literals(self):
        with pytest.raises(InvalidTermError):
            to_subject('"literal subject"')

    def test_term_key_total_order(self):
        terms = [BlankNode("b"), Literal("x"), IRI("a")]
        ordered = sorted(terms, key=term_key)
        assert isinstance(ordered[0], IRI)
        assert isinstance(ordered[1], Literal)
        assert isinstance(ordered[2], BlankNode)
