"""Unit tests for graph serialisation (line format, CSV, JSON)."""

import pytest

from repro.errors import ParseError
from repro.kg import TemporalKnowledgeGraph
from repro.kg.io import csv_io, json_io, load_graph, save_graph, tqlines
from repro.temporal import TimeInterval


@pytest.fixture
def sample_graph():
    graph = TemporalKnowledgeGraph(name="sample")
    graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
    graph.add(("CR", "birthDate", 1951, (1951, 2017), 1.0))
    graph.add(("CR", "livesIn", '"Greater London"', (2000, 2004), 0.6))
    return graph


class TestLineFormat:
    def test_round_trip(self, sample_graph):
        text = tqlines.dumps(sample_graph)
        parsed = tqlines.loads(text, name="sample")
        assert len(parsed) == len(sample_graph)
        assert ("CR", "coach", "Chelsea", (2000, 2004)) in parsed

    def test_parse_line_paper_syntax(self):
        fact = tqlines.parse_line("CR coach Chelsea [2000,2004] 0.9")
        assert fact.interval == TimeInterval(2000, 2004)
        assert fact.confidence == pytest.approx(0.9)

    def test_parse_line_default_confidence(self):
        assert tqlines.parse_line("CR coach Chelsea [2000,2004]").confidence == 1.0

    def test_comments_and_blank_lines_ignored(self):
        graph = tqlines.loads("# comment\n\nCR coach Chelsea [2000,2004] 0.9\n")
        assert len(graph) == 1

    def test_quoted_terms(self):
        fact = tqlines.parse_line('CR livesIn "Greater London" [2000,2004] 0.5')
        assert "Greater London" in str(fact.object)

    def test_wrong_field_count_raises(self):
        with pytest.raises(ParseError):
            tqlines.parse_line("CR coach", line_number=3)

    def test_bad_confidence_raises(self):
        with pytest.raises(ParseError):
            tqlines.parse_line("CR coach Chelsea [2000,2004] high")

    def test_bad_interval_raises(self):
        with pytest.raises(ParseError):
            tqlines.parse_line("CR coach Chelsea twentyyears 0.9")

    def test_file_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tq"
        tqlines.dump(sample_graph, path)
        loaded = tqlines.load(path)
        assert len(loaded) == len(sample_graph)
        assert loaded.name == "graph"


class TestCSV:
    def test_round_trip(self, sample_graph):
        text = csv_io.dumps(sample_graph)
        parsed = csv_io.loads(text, name="sample")
        assert len(parsed) == len(sample_graph)

    def test_alias_columns(self):
        text = "subject,predicate,object,valid_from,valid_to,score\nCR,coach,Chelsea,2000,2004,0.9\n"
        graph = csv_io.loads(text)
        fact = graph.facts()[0]
        assert fact.interval == TimeInterval(2000, 2004)
        assert fact.confidence == pytest.approx(0.9)

    def test_missing_end_defaults_to_instant(self):
        text = "subject,predicate,object,start\nCR,birthDate,1951,1951\n"
        assert csv_io.loads(text).facts()[0].interval == TimeInterval(1951, 1951)

    def test_missing_confidence_defaults_to_one(self):
        text = "subject,predicate,object,start,end\nCR,coach,Chelsea,2000,2004\n"
        assert csv_io.loads(text).facts()[0].confidence == 1.0

    def test_tsv_detection(self):
        text = "subject\tpredicate\tobject\tstart\tend\nCR\tcoach\tChelsea\t2000\t2004\n"
        assert len(csv_io.loads(text)) == 1

    def test_missing_required_column_raises(self):
        with pytest.raises(ParseError):
            csv_io.loads("subject,predicate,start\nCR,coach,2000\n")

    def test_bad_year_raises(self):
        with pytest.raises(ParseError):
            csv_io.loads("subject,predicate,object,start\nCR,coach,Chelsea,soon\n")

    def test_file_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.csv"
        csv_io.dump(sample_graph, path)
        assert len(csv_io.load(path)) == len(sample_graph)


class TestJSON:
    def test_round_trip(self, sample_graph):
        text = json_io.dumps(sample_graph)
        parsed = json_io.loads(text)
        assert len(parsed) == len(sample_graph)
        assert parsed.name == "sample"

    def test_short_and_long_keys(self):
        document = '{"name": "t", "facts": [{"subject": "a", "predicate": "p", "object": "b", "time": [1, 2], "weight": 0.5}]}'
        graph = json_io.loads(document)
        assert graph.facts()[0].confidence == pytest.approx(0.5)

    def test_interval_as_string(self):
        document = '{"facts": [{"s": "a", "p": "p", "o": "b", "interval": "[3,4]"}]}'
        assert json_io.loads(document).facts()[0].interval == TimeInterval(3, 4)

    def test_missing_keys_raise(self):
        with pytest.raises(ParseError):
            json_io.loads('{"facts": [{"s": "a", "p": "p"}]}')

    def test_invalid_json_raises(self):
        with pytest.raises(ParseError):
            json_io.loads("{not json")

    def test_non_object_top_level_raises(self):
        with pytest.raises(ParseError):
            json_io.loads("[1, 2, 3]")

    def test_file_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        json_io.dump(sample_graph, path)
        assert len(json_io.load(path)) == len(sample_graph)


class TestDispatch:
    @pytest.mark.parametrize("extension", [".tq", ".csv", ".json"])
    def test_load_save_by_extension(self, sample_graph, tmp_path, extension):
        path = tmp_path / f"graph{extension}"
        save_graph(sample_graph, path)
        assert len(load_graph(path)) == len(sample_graph)

    def test_unknown_extension_raises(self, sample_graph, tmp_path):
        with pytest.raises(ParseError):
            save_graph(sample_graph, tmp_path / "graph.xml")
        with pytest.raises(ParseError):
            load_graph(tmp_path / "graph.xml")
