"""KG mutation invariants the incremental engine leans on.

Three contracts of :class:`~repro.kg.TemporalKnowledgeGraph`:

* insertion ticks are monotonic and never reused — an ``add`` after a
  ``remove`` gets a strictly larger tick, so a re-added statement always
  lands inside the current delta window;
* a ``mark()`` cursor stays a valid delta bound across arbitrary removals;
* ``copy()`` preserves ticks and the tick counter, so delta views taken on
  the copy behave exactly as on the original.
"""

from repro.kg import TemporalKnowledgeGraph, make_fact

FACT = ("CR", "coach", "Chelsea", (2000, 2004), 0.9)
OTHER = ("CR", "coach", "Napoli", (2001, 2003), 0.6)


def keys(facts):
    return {fact.statement_key for fact in facts}


class TestTickMonotonicity:
    def test_readd_after_remove_gets_fresh_tick(self):
        graph = TemporalKnowledgeGraph(name="ticks")
        graph.add(FACT)
        first_tick = graph.added_at(FACT)
        assert graph.remove(FACT)
        assert graph.added_at(FACT) is None
        graph.add(FACT)
        assert graph.added_at(FACT) > first_tick

    def test_ticks_never_reused_across_churn(self):
        graph = TemporalKnowledgeGraph(name="churn")
        seen = set()
        for round_number in range(5):
            graph.add(FACT)
            tick = graph.added_at(FACT)
            assert tick not in seen
            seen.add(tick)
            graph.remove(FACT)

    def test_confidence_merge_keeps_original_tick(self):
        """Re-adding a present statement is a merge, not a new insertion."""
        graph = TemporalKnowledgeGraph(name="merge")
        graph.add(FACT)
        tick = graph.added_at(FACT)
        stored = graph.add(make_fact("CR", "coach", "Chelsea", (2000, 2004), 0.95))
        assert stored.confidence == 0.95
        assert graph.added_at(FACT) == tick

    def test_mark_advances_only_on_new_statements(self):
        graph = TemporalKnowledgeGraph(name="marks")
        graph.add(FACT)
        mark = graph.mark()
        graph.add(FACT)  # duplicate: no new tick
        assert graph.mark() == mark
        graph.add(OTHER)
        assert graph.mark() > mark


class TestMarkAcrossRemovals:
    def test_delta_window_survives_removals(self):
        graph = TemporalKnowledgeGraph(name="window")
        graph.add(FACT)
        mark = graph.mark()
        graph.remove(FACT)
        new = graph.add(OTHER)
        since = keys(graph.iter_matching(since=mark))
        assert since == {new.statement_key}
        before = keys(graph.iter_matching(before=mark))
        assert before == set()  # the only pre-mark fact was removed

    def test_removed_then_readded_fact_enters_delta(self):
        graph = TemporalKnowledgeGraph(name="readd")
        graph.add(FACT)
        graph.add(OTHER)
        mark = graph.mark()
        graph.remove(FACT)
        readded = graph.add(FACT)
        assert keys(graph.iter_matching(since=mark)) == {readded.statement_key}
        assert keys(graph.iter_matching(before=mark)) == {make_fact(*OTHER).statement_key}

    def test_pattern_delta_combination(self):
        graph = TemporalKnowledgeGraph(name="pattern")
        graph.add(FACT)
        mark = graph.mark()
        graph.add(OTHER)
        graph.add(("CR", "playsFor", "Palermo", (1984, 1986), 0.5))
        from repro.kg import IRI

        matched = keys(graph.iter_matching(predicate=IRI("coach"), since=mark))
        assert matched == {make_fact(*OTHER).statement_key}


class TestBulkRemoval:
    def test_without_statements_matches_repeated_remove(self):
        graph = TemporalKnowledgeGraph(name="bulk")
        graph.add(FACT)
        graph.add(OTHER)
        third = graph.add(("CR", "playsFor", "Palermo", (1984, 1986), 0.5))
        fact_key = make_fact(*FACT).statement_key
        pruned = graph.without_statements([fact_key, ("bogus",)])
        slow = graph.copy()
        slow.remove(FACT)
        assert keys(pruned) == keys(slow)
        assert [f.statement_key for f in pruned] == [f.statement_key for f in slow]
        assert pruned.find(predicate="coach") == slow.find(predicate="coach")
        # Original untouched; ticks preserved on the survivors.
        assert FACT in graph
        assert pruned.added_at(third) == graph.added_at(third)

    def test_without_statements_preserves_delta_cursors(self):
        graph = TemporalKnowledgeGraph(name="bulk-delta")
        graph.add(FACT)
        mark = graph.mark()
        added = graph.add(OTHER)
        pruned = graph.without_statements([make_fact(*FACT).statement_key])
        assert keys(pruned.iter_matching(since=mark)) == {added.statement_key}
        assert pruned.mark() == graph.mark()


class TestCopyPreservesDeltaViews:
    def test_copy_preserves_ticks_and_counter(self):
        graph = TemporalKnowledgeGraph(name="original")
        graph.add(FACT)
        mark = graph.mark()
        graph.add(OTHER)
        clone = graph.copy(name="clone")
        assert clone.mark() == graph.mark()
        for fact in graph:
            assert clone.added_at(fact) == graph.added_at(fact)
        assert keys(clone.iter_matching(since=mark)) == keys(graph.iter_matching(since=mark))

    def test_copy_is_independent_after_mutation(self):
        graph = TemporalKnowledgeGraph(name="original")
        graph.add(FACT)
        clone = graph.copy(name="clone")
        mark = clone.mark()
        added = clone.add(OTHER)
        assert keys(clone.iter_matching(since=mark)) == {added.statement_key}
        assert keys(graph.iter_matching(since=mark)) == set()
        assert OTHER not in graph and OTHER in clone

    def test_copy_after_removal_keeps_cursor_semantics(self):
        graph = TemporalKnowledgeGraph(name="original")
        graph.add(FACT)
        graph.add(OTHER)
        mark = graph.mark()
        graph.remove(FACT)
        clone = graph.copy(name="clone")
        readded = clone.add(FACT)
        assert keys(clone.iter_matching(since=mark)) == {readded.statement_key}
        # The original, unmodified, still sees an empty delta.
        assert keys(graph.iter_matching(since=mark)) == set()
