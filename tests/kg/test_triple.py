"""Unit tests for triples and uncertain temporal facts."""

import math

import pytest

from repro.errors import InvalidFactError
from repro.kg import CERTAIN_LOG_WEIGHT, IRI, TemporalFact, Triple, coerce_fact, make_fact
from repro.temporal import TimeInterval


class TestMakeFact:
    def test_paper_fact(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004), 0.9)
        assert fact.subject == IRI("CR")
        assert fact.predicate == IRI("coach")
        assert fact.interval == TimeInterval(2000, 2004)
        assert fact.confidence == pytest.approx(0.9)

    def test_interval_from_int(self):
        assert make_fact("a", "p", "b", 1999).interval == TimeInterval(1999, 1999)

    def test_interval_from_string(self):
        assert make_fact("a", "p", "b", "[1,5]").interval == TimeInterval(1, 5)

    def test_interval_from_interval(self):
        interval = TimeInterval(3, 4)
        assert make_fact("a", "p", "b", interval).interval is interval

    def test_numeric_object_becomes_literal(self):
        fact = make_fact("CR", "birthDate", 1951, (1951, 2017))
        assert fact.object.value == "1951"

    def test_default_confidence_is_certain(self):
        assert make_fact("a", "p", "b", (1, 2)).is_certain

    def test_bad_interval_value(self):
        with pytest.raises(InvalidFactError):
            make_fact("a", "p", "b", object())


class TestTemporalFactValidation:
    def test_zero_confidence_rejected(self):
        with pytest.raises(InvalidFactError):
            make_fact("a", "p", "b", (1, 2), 0.0)

    def test_above_one_rejected(self):
        with pytest.raises(InvalidFactError):
            make_fact("a", "p", "b", (1, 2), 1.2)

    def test_nan_rejected(self):
        with pytest.raises(InvalidFactError):
            make_fact("a", "p", "b", (1, 2), float("nan"))

    def test_non_interval_rejected(self):
        with pytest.raises(InvalidFactError):
            TemporalFact(IRI("a"), IRI("p"), IRI("b"), (1, 2), 0.5)  # type: ignore[arg-type]


class TestFactProperties:
    def test_statement_key_ignores_confidence(self):
        first = make_fact("a", "p", "b", (1, 2), 0.5)
        second = make_fact("a", "p", "b", (1, 2), 0.9)
        assert first.statement_key == second.statement_key

    def test_statement_key_distinguishes_intervals(self):
        assert make_fact("a", "p", "b", (1, 2)).statement_key != make_fact(
            "a", "p", "b", (1, 3)
        ).statement_key

    def test_log_weight_symmetry(self):
        high = make_fact("a", "p", "b", (1, 2), 0.9).log_weight
        low = make_fact("a", "p", "b", (1, 2), 0.1).log_weight
        assert high == pytest.approx(-low)

    def test_log_weight_at_half_is_zero(self):
        assert make_fact("a", "p", "b", (1, 2), 0.5).log_weight == pytest.approx(0.0)

    def test_log_weight_certain_is_capped(self):
        assert make_fact("a", "p", "b", (1, 2), 1.0).log_weight == CERTAIN_LOG_WEIGHT
        assert math.isfinite(make_fact("a", "p", "b", (1, 2), 1.0).log_weight)

    def test_with_confidence(self):
        fact = make_fact("a", "p", "b", (1, 2), 0.5)
        updated = fact.with_confidence(0.8)
        assert updated.confidence == pytest.approx(0.8)
        assert fact.confidence == pytest.approx(0.5)

    def test_with_interval(self):
        fact = make_fact("a", "p", "b", (1, 2))
        assert fact.with_interval(TimeInterval(5, 9)).interval == TimeInterval(5, 9)

    def test_triple_view(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004))
        assert fact.triple == Triple(IRI("CR"), IRI("coach"), IRI("Chelsea"))

    def test_str_contains_interval_and_confidence(self):
        text = str(make_fact("CR", "coach", "Chelsea", (2000, 2004), 0.9))
        assert "[2000,2004]" in text
        assert "0.90" in text

    def test_sorting_is_deterministic(self):
        facts = [
            make_fact("b", "p", "o", (1, 2), 0.5),
            make_fact("a", "p", "o", (1, 2), 0.5),
            make_fact("a", "p", "o", (1, 2), 0.9),
        ]
        ordered = sorted(facts)
        assert str(ordered[0].subject) == "a"


class TestCoerceFact:
    def test_pass_through(self):
        fact = make_fact("a", "p", "b", (1, 2))
        assert coerce_fact(fact) is fact

    def test_from_tuple_without_confidence(self):
        fact = coerce_fact(("a", "p", "b", (1, 2)))
        assert fact.confidence == 1.0

    def test_from_tuple_with_confidence(self):
        assert coerce_fact(("a", "p", "b", (1, 2), 0.7)).confidence == pytest.approx(0.7)

    def test_invalid_shape_rejected(self):
        with pytest.raises(InvalidFactError):
            coerce_fact(("a", "p"))
