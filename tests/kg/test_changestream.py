"""Tests for the change-stream parser feeding ``tecore watch``."""

import pytest

from repro.errors import ParseError
from repro.kg import make_fact
from repro.kg.io import ChangeStep, iter_change_steps, load_change_stream

STREAM = """
# repair the running example
- CR coach Napoli [2001,2003] 0.6
+ CR coach Leicester [2015,2016] 0.97
resolve

add CR coach Fulham [2018,2019] 0.7
remove CR coach Leicester [2015,2016]
"""


class TestParsing:
    def test_steps_ops_and_trailing_step(self):
        steps = list(iter_change_steps(STREAM.splitlines()))
        assert len(steps) == 2
        first, second = steps
        assert [f.statement_key for f in first.removes] == [
            make_fact("CR", "coach", "Napoli", (2001, 2003)).statement_key
        ]
        assert first.adds[0].confidence == 0.97
        assert len(first) == 2 and not first.is_empty
        # word-operators and confidence-less removals
        assert second.adds[0].object.value == "Fulham"
        assert second.removes[0].confidence == 1.0

    def test_resolve_is_case_insensitive_and_blank_lines_ignored(self):
        steps = list(iter_change_steps(["+ A p B [1,2] 0.5", "", "RESOLVE"]))
        assert len(steps) == 1 and len(steps[0].adds) == 1

    def test_leading_resolve_yields_no_empty_step(self):
        # Regression: a leading `resolve` used to emit an empty ChangeStep,
        # making watch/session replays pay a resolution round for a no-op.
        assert list(iter_change_steps(["resolve"])) == []

    def test_consecutive_resolves_yield_no_empty_steps(self):
        steps = list(
            iter_change_steps(
                ["resolve", "+ A p B [1,2] 0.5", "resolve", "resolve", "RESOLVE"]
            )
        )
        assert len(steps) == 1
        assert len(steps[0].adds) == 1
        assert not any(step.is_empty for step in steps)

    def test_empty_changestep_is_still_constructible(self):
        assert ChangeStep().is_empty and len(ChangeStep()) == 0

    def test_unknown_operator_raises(self):
        with pytest.raises(ParseError):
            list(iter_change_steps(["frobnicate A p B [1,2]"]))

    def test_missing_fact_raises(self):
        with pytest.raises(ParseError):
            list(iter_change_steps(["+   "]))

    def test_bad_fact_line_raises_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            list(iter_change_steps(["+ only three tokens"]))
        assert "3" in str(excinfo.value) or "interval" in str(excinfo.value)


class TestLoading:
    def test_load_change_stream_roundtrip(self, tmp_path):
        path = tmp_path / "edits.stream"
        path.write_text(STREAM, encoding="utf-8")
        steps = load_change_stream(path)
        assert len(steps) == 2
        assert steps[0].removes and steps[1].adds
