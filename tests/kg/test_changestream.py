"""Tests for the change-stream parser feeding ``tecore watch``."""

import pytest

from repro.errors import ParseError
from repro.kg import make_fact
from repro.kg.io import (
    ChangeStep,
    append_change_step,
    format_change_step,
    iter_change_steps,
    load_change_stream,
)

STREAM = """
# repair the running example
- CR coach Napoli [2001,2003] 0.6
+ CR coach Leicester [2015,2016] 0.97
resolve

add CR coach Fulham [2018,2019] 0.7
remove CR coach Leicester [2015,2016]
"""


class TestParsing:
    def test_steps_ops_and_trailing_step(self):
        steps = list(iter_change_steps(STREAM.splitlines()))
        assert len(steps) == 2
        first, second = steps
        assert [f.statement_key for f in first.removes] == [
            make_fact("CR", "coach", "Napoli", (2001, 2003)).statement_key
        ]
        assert first.adds[0].confidence == 0.97
        assert len(first) == 2 and not first.is_empty
        # word-operators and confidence-less removals
        assert second.adds[0].object.value == "Fulham"
        assert second.removes[0].confidence == 1.0

    def test_resolve_is_case_insensitive_and_blank_lines_ignored(self):
        steps = list(iter_change_steps(["+ A p B [1,2] 0.5", "", "RESOLVE"]))
        assert len(steps) == 1 and len(steps[0].adds) == 1

    def test_leading_resolve_yields_no_empty_step(self):
        # Regression: a leading `resolve` used to emit an empty ChangeStep,
        # making watch/session replays pay a resolution round for a no-op.
        assert list(iter_change_steps(["resolve"])) == []

    def test_consecutive_resolves_yield_no_empty_steps(self):
        steps = list(
iter_change_steps(["resolve", "+ A p B [1,2] 0.5", "resolve", "resolve", "RESOLVE"])
        )
        assert len(steps) == 1
        assert len(steps[0].adds) == 1
        assert not any(step.is_empty for step in steps)

    def test_empty_changestep_is_still_constructible(self):
        assert ChangeStep().is_empty and len(ChangeStep()) == 0

    def test_unknown_operator_raises(self):
        with pytest.raises(ParseError):
            list(iter_change_steps(["frobnicate A p B [1,2]"]))

    def test_missing_fact_raises(self):
        with pytest.raises(ParseError):
            list(iter_change_steps(["+   "]))

    def test_bad_fact_line_raises_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            list(iter_change_steps(["+ only three tokens"]))
        assert "3" in str(excinfo.value) or "interval" in str(excinfo.value)


class TestLoading:
    def test_load_change_stream_roundtrip(self, tmp_path):
        path = tmp_path / "edits.stream"
        path.write_text(STREAM, encoding="utf-8")
        steps = load_change_stream(path)
        assert len(steps) == 2
        assert steps[0].removes and steps[1].adds


class TestTornTail:
    """A producer killed mid-append must not poison the whole stream."""

    def test_torn_final_line_warns_and_keeps_complete_steps(self, tmp_path):
        path = tmp_path / "edits.stream"
        # A complete step, then a write torn mid-fact (no trailing newline).
        path.write_text(
            "+ CR coach Leicester [2015,2016] 0.97\nresolve\n+ CR coach Ful",
            encoding="utf-8",
        )
        with pytest.warns(RuntimeWarning, match="torn"):
            steps = load_change_stream(path)
        assert len(steps) == 1
        assert steps[0].adds[0].object.value == "Leicester"

    def test_newline_terminated_bad_final_line_still_raises(self, tmp_path):
        path = tmp_path / "edits.stream"
        # The final line carries its newline, so the write completed — the
        # garbage is real corruption, not a torn append.
        path.write_text(
            "+ CR coach Leicester [2015,2016] 0.97\n+ CR coach Ful\n",
            encoding="utf-8",
        )
        with pytest.raises(ParseError):
            load_change_stream(path)

    def test_bad_line_before_the_tail_still_raises(self, tmp_path):
        path = tmp_path / "edits.stream"
        path.write_text(
            "frobnicate A p B [1,2]\n+ CR coach Leicester [2015,2016] 0.97",
            encoding="utf-8",
        )
        with pytest.raises(ParseError):
            load_change_stream(path)

    def test_explicit_override_controls_tolerance(self):
        lines = ["+ A p B [1,2] 0.5\n", "+ garb"]
        with pytest.raises(ParseError):
            list(iter_change_steps(lines, tolerate_torn_tail=False))
        with pytest.warns(RuntimeWarning):
            steps = list(iter_change_steps(["+ garb"], tolerate_torn_tail=True))
        assert steps == []


class TestWriting:
    def test_append_change_step_roundtrips_through_the_parser(self, tmp_path):
        path = tmp_path / "edits.stream"
        step = ChangeStep(
            adds=(make_fact("CR", "coach", "Fulham", (2018, 2019), 0.7),),
            removes=(make_fact("CR", "coach", "Napoli", (2001, 2003), 0.6),),
        )
        written = append_change_step(path, step)
        assert written == path.stat().st_size
        written += append_change_step(path, ChangeStep(adds=step.adds))
        assert written == path.stat().st_size

        steps = load_change_stream(path)
        assert len(steps) == 2
        assert steps[0].removes[0].statement_key == step.removes[0].statement_key
        assert steps[0].adds[0].confidence == pytest.approx(0.7)
        assert steps[1].removes == ()

    def test_format_change_step_orders_removes_first_and_closes(self):
        step = ChangeStep(
            adds=(make_fact("A", "p", "B", (1, 2), 0.5),),
            removes=(make_fact("C", "q", "D", (3, 4), 0.9),),
        )
        text = format_change_step(step)
        lines = text.splitlines()
        assert lines[0].startswith("- ") and lines[1].startswith("+ ")
        assert lines[-1] == "resolve" and text.endswith("\n")
