"""Unit tests for graph statistics."""

import pytest

from repro.kg import TemporalKnowledgeGraph, graph_stats, predicate_stats


@pytest.fixture
def graph():
    graph = TemporalKnowledgeGraph(name="stats")
    graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
    graph.add(("CR", "coach", "Leicester", (2015, 2017), 0.7))
    graph.add(("CR", "birthDate", 1951, (1951, 2017), 1.0))
    graph.add(("JM", "coach", "Porto", (2002, 2004), 0.8))
    return graph


class TestPredicateStats:
    def test_counts(self, graph):
        stats = predicate_stats(graph, "coach")
        assert stats.fact_count == 3
        assert stats.subject_count == 2
        assert stats.object_count == 3

    def test_confidence_and_span(self, graph):
        stats = predicate_stats(graph, "coach")
        assert stats.mean_confidence == pytest.approx((0.9 + 0.7 + 0.8) / 3)
        assert stats.min_year == 2000
        assert stats.max_year == 2017

    def test_missing_predicate(self, graph):
        stats = predicate_stats(graph, "spouse")
        assert stats.fact_count == 0
        assert stats.mean_confidence == 0.0


class TestGraphStats:
    def test_overall_counts(self, graph):
        stats = graph_stats(graph)
        assert stats.fact_count == 4
        assert stats.predicate_count == 2
        assert stats.certain_fact_count == 1
        assert stats.uncertain_fact_count == 3
        assert stats.time_span == (1951, 2017)

    def test_per_predicate_rows(self, graph):
        stats = graph_stats(graph)
        rows = stats.as_rows()
        assert {row["predicate"] for row in rows} == {"coach", "birthDate"}
        coach_row = next(row for row in rows if row["predicate"] == "coach")
        assert coach_row["facts"] == 3

    def test_empty_graph(self):
        stats = graph_stats(TemporalKnowledgeGraph(name="empty"))
        assert stats.fact_count == 0
        assert stats.time_span is None
        assert stats.mean_confidence == 0.0
