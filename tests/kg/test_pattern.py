"""Unit tests for the triple pattern helper."""

from repro.kg import IRI, Pattern, make_fact


class TestPattern:
    def test_wildcard_pattern_matches_everything(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004), 0.9)
        assert Pattern().matches(fact)

    def test_subject_filter(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004))
        assert Pattern(subject=IRI("CR")).matches(fact)
        assert not Pattern(subject=IRI("JM")).matches(fact)

    def test_predicate_filter(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004))
        assert Pattern(predicate=IRI("coach")).matches(fact)
        assert not Pattern(predicate=IRI("playsFor")).matches(fact)

    def test_object_filter(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004))
        assert Pattern(object=IRI("Chelsea")).matches(fact)
        assert not Pattern(object=IRI("Napoli")).matches(fact)

    def test_combined_filters(self):
        fact = make_fact("CR", "coach", "Chelsea", (2000, 2004))
        assert Pattern(subject=IRI("CR"), predicate=IRI("coach"), object=IRI("Chelsea")).matches(
            fact
        )
        assert not Pattern(subject=IRI("CR"), predicate=IRI("coach"), object=IRI("Napoli")).matches(
            fact
        )
