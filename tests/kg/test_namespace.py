"""Unit tests for namespace management."""

import pytest

from repro.errors import InvalidTermError
from repro.kg import IRI, Namespace, NamespaceManager, default_namespace_manager


class TestNamespace:
    def test_term_building(self):
        namespace = Namespace("wd", "http://www.wikidata.org/entity/")
        assert namespace.term("Q42") == IRI("http://www.wikidata.org/entity/Q42")

    def test_getitem(self):
        namespace = Namespace("ex", "http://example.org/")
        assert namespace["CR"] == IRI("http://example.org/CR")


class TestNamespaceManager:
    def test_bind_and_contains(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert "ex" in manager
        assert "other" not in manager

    def test_empty_prefix_rejected(self):
        with pytest.raises(InvalidTermError):
            NamespaceManager().bind("", "http://example.org/")

    def test_expand_known_prefix(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.expand("ex:CR") == IRI("http://example.org/CR")

    def test_expand_unknown_prefix_passes_through(self):
        manager = NamespaceManager()
        assert manager.expand("unknown:CR") == IRI("unknown:CR")

    def test_expand_plain_name(self):
        assert NamespaceManager().expand("CR") == IRI("CR")

    def test_compact_picks_longest_match(self):
        manager = NamespaceManager()
        manager.bind("wd", "http://www.wikidata.org/")
        manager.bind("wde", "http://www.wikidata.org/entity/")
        compacted = manager.compact(IRI("http://www.wikidata.org/entity/Q42"))
        assert compacted == "wde:Q42"

    def test_compact_without_match(self):
        manager = NamespaceManager()
        assert manager.compact(IRI("http://nowhere.org/x")) == "http://nowhere.org/x"

    def test_iteration(self):
        manager = NamespaceManager()
        manager.bind("a", "http://a/")
        manager.bind("b", "http://b/")
        assert {namespace.prefix for namespace in manager} == {"a", "b"}

    def test_default_manager_has_well_known_prefixes(self):
        manager = default_namespace_manager()
        assert "wd" in manager
        assert "football" in manager
        assert manager.expand("wdt:P54").value.startswith("http://www.wikidata.org/prop/")
