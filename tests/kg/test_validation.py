"""Unit tests for UTKG validation."""

import pytest

from repro.kg import Severity, TemporalKnowledgeGraph, validate_graph
from repro.temporal import TimeDomain


@pytest.fixture
def graph():
    graph = TemporalKnowledgeGraph(name="validate")
    graph.add(("CR", "birthDate", 1951, (1951, 2017), 1.0))
    graph.add(("CR", "birthDate", 1953, (1953, 2017), 0.4))
    graph.add(("CR", "coach", "Chelsea", (2000, 2004), 0.9))
    graph.add(("CR", "coach", "Leicester", (2015, 2017), 0.03))
    return graph


class TestValidation:
    def test_clean_graph_ok(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("a", "p", "b", (2000, 2001), 0.9))
        report = validate_graph(graph)
        assert report.ok
        assert len(report) == 0

    def test_out_of_domain_interval_is_error(self, graph):
        report = validate_graph(graph, domain=TimeDomain(1990, 2020))
        assert not report.ok
        assert any(issue.code == "interval-outside-domain" for issue in report.errors)

    def test_functional_predicate_clash_is_warning(self, graph):
        report = validate_graph(graph, functional_predicates=["birthDate"])
        assert report.ok  # warnings only
        assert any(issue.code == "functional-predicate-clash" for issue in report.warnings)

    def test_functional_predicate_without_clash(self):
        graph = TemporalKnowledgeGraph()
        graph.add(("a", "birthDate", 1950, (1950, 2000)))
        graph.add(("b", "birthDate", 1960, (1960, 2000)))
        report = validate_graph(graph, functional_predicates=["birthDate"])
        assert not report.warnings

    def test_long_interval_flagged(self, graph):
        report = validate_graph(graph, max_duration=30)
        assert any(issue.code == "interval-too-long" for issue in report.warnings)

    def test_low_confidence_is_info(self, graph):
        report = validate_graph(graph)
        infos = [issue for issue in report.issues if issue.severity is Severity.INFO]
        assert any(issue.code == "very-low-confidence" for issue in infos)

    def test_issue_str_mentions_fact(self, graph):
        report = validate_graph(graph, functional_predicates=["birthDate"])
        text = str(report.warnings[0])
        assert "functional-predicate-clash" in text
        assert "birthDate" in text

    def test_graph_domain_used_when_no_explicit_domain(self):
        graph = TemporalKnowledgeGraph(domain=TimeDomain(1900, 2100))
        graph.add(("a", "p", "b", (1950, 1960)))
        assert validate_graph(graph).ok
