"""Unit tests for dataset generators, noise injection and the registry."""

import pytest

from repro.datasets import (
    FootballDBConfig,
    NoisyDataset,
    PAPER_RELATION_COUNTS,
    PAPER_TOTAL_FACTS,
    WikidataConfig,
    available_datasets,
    generate_footballdb,
    generate_wikidata,
    load_dataset,
    make_noisy,
    paper_relation_shares,
    ranieri_extended_graph,
    ranieri_graph,
)
from repro.datasets.noise import inject_overlap_noise, inject_value_noise
from repro.errors import DatasetError
from repro.kg import graph_stats
from repro.logic import find_conflicts, sports_pack
import random


class TestRanieri:
    def test_figure_1_graph(self):
        graph = ranieri_graph()
        assert len(graph) == 5
        assert {p.value for p in graph.predicates()} == {"coach", "playsFor", "birthDate"}

    def test_extended_graph_adds_locations(self):
        graph = ranieri_extended_graph()
        assert len(graph) == 9
        assert "locatedIn" in {p.value for p in graph.predicates()}


class TestFootballDB:
    def test_schema_matches_paper(self):
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, seed=1))
        predicates = {p.value for p in dataset.graph.predicates()}
        assert predicates == {"playsFor", "birthDate"}

    def test_relative_cardinalities(self):
        dataset = generate_footballdb(FootballDBConfig(scale=0.02, seed=2))
        stats = graph_stats(dataset.graph)
        counts = {row["predicate"]: row["facts"] for row in stats.as_rows()}
        # The paper reports roughly 2x more playsFor facts than birthDate facts.
        assert counts["playsFor"] > counts["birthDate"]
        assert counts["playsFor"] < 4 * counts["birthDate"]

    def test_full_scale_player_count(self):
        config = FootballDBConfig(scale=1.0)
        assert config.player_count() == FootballDBConfig.FULL_SCALE_PLAYERS

    def test_explicit_player_count_overrides_scale(self):
        assert FootballDBConfig(scale=1.0, players=10).player_count() == 10

    def test_clean_generation_is_conflict_free(self):
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.0, seed=3))
        assert dataset.noise_facts == []
        assert find_conflicts(dataset.graph, sports_pack().constraints) == []

    def test_noise_ratio_respected(self):
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.5, seed=4))
        assert dataset.noise_ratio == pytest.approx(1 / 3, abs=0.05)
        assert len(dataset.noise_facts) > 0

    def test_noise_creates_conflicts(self):
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.5, seed=5))
        assert len(find_conflicts(dataset.graph, sports_pack().constraints)) > 0

    def test_deterministic_given_seed(self):
        first = generate_footballdb(FootballDBConfig(scale=0.005, noise_ratio=0.3, seed=9))
        second = generate_footballdb(FootballDBConfig(scale=0.005, noise_ratio=0.3, seed=9))
        assert {f.statement_key for f in first.graph} == {f.statement_key for f in second.graph}

    def test_negative_noise_rejected(self):
        with pytest.raises(DatasetError):
            generate_footballdb(FootballDBConfig(noise_ratio=-0.1))

    def test_clean_graph_view(self):
        dataset = generate_footballdb(FootballDBConfig(scale=0.01, noise_ratio=0.5, seed=6))
        clean = dataset.clean_graph()
        assert len(clean) == len(dataset.clean_facts)


class TestWikidata:
    def test_relation_mix_matches_paper(self):
        dataset = generate_wikidata(WikidataConfig(scale=0.001, seed=1))
        predicates = {p.value for p in dataset.graph.predicates()}
        assert {"playsFor", "memberOf", "spouse", "educatedAt", "occupation"} <= predicates

    def test_plays_for_dominates(self):
        dataset = generate_wikidata(WikidataConfig(scale=0.001, seed=2))
        stats = graph_stats(dataset.graph)
        counts = {row["predicate"]: row["facts"] for row in stats.as_rows()}
        assert counts["playsFor"] > counts["memberOf"] > counts["occupation"]

    def test_paper_inventory_constants(self):
        assert PAPER_RELATION_COUNTS["playsFor"] == 4_000_000
        assert sum(PAPER_RELATION_COUNTS.values()) == pytest.approx(PAPER_TOTAL_FACTS, rel=0.01)
        shares = paper_relation_shares()
        assert shares["playsFor"] == pytest.approx(4_000_000 / 6_300_000)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            generate_wikidata(WikidataConfig(scale=0.0))

    def test_noise_injection(self):
        dataset = generate_wikidata(WikidataConfig(scale=0.0005, noise_ratio=0.3, seed=3))
        assert len(dataset.noise_facts) > 0


class TestNoiseInjection:
    def test_overlap_noise_conflicts_with_base(self):
        dataset = make_noisy(ranieri_graph())
        rng = random.Random(0)
        injected = inject_overlap_noise(dataset, "coach", ["Roma", "Juventus", "Milan"], 2, rng)
        assert len(injected) == 2
        assert all(fact.predicate.value == "coach" for fact in injected)

    def test_value_noise_changes_value(self):
        dataset = make_noisy(ranieri_graph())
        rng = random.Random(0)
        injected = inject_value_noise(dataset, "birthDate", 1, rng)
        assert len(injected) == 1
        assert str(injected[0].object) != "1951"

    def test_noise_on_missing_predicate_is_noop(self):
        dataset = make_noisy(ranieri_graph())
        assert inject_overlap_noise(dataset, "spouse", ["A", "B"], 3, random.Random(0)) == []

    def test_summary(self):
        dataset = make_noisy(ranieri_graph())
        summary = dataset.summary()
        assert summary["facts"] == 5
        assert summary["noise_ratio"] == 0.0


class TestRegistry:
    def test_available_datasets(self):
        assert set(available_datasets()) == {
            "ranieri", "ranieri-extended", "footballdb", "wikidata"
        }

    def test_load_by_name_with_parameters(self):
        dataset = load_dataset("footballdb", scale=0.005, noise_ratio=0.2, seed=1)
        assert isinstance(dataset, NoisyDataset)
        assert len(dataset.noise_facts) > 0

    def test_load_ranieri(self):
        assert len(load_dataset("ranieri").graph) == 5

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("yago")
